package bufcheck

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	simvet "repro/internal/analysis"
)

// EventpoolAnalyzer enforces kernel-event pool hygiene (DESIGN.md §8, PR 6):
// sim.Kernel has two scheduling families — At/After return a *sim.Event
// handle that exists only to be retained for Cancel, while Schedule/
// ScheduleAfter recycle their Event through a freelist and hand nothing out.
//
//   - A discarded At/After handle is a pooling bug: the caller pays the
//     handle allocation for nothing and blocks the event from the freelist;
//     fire-and-forget events must use the pooled variants. (At → Schedule
//     conversions are digest-neutral: the trace digest mixes only an event's
//     time and sequence number, which both families share.)
//   - A callback that cancels its own handle is a liveness bug dressed as
//     cleanup: by the time the callback runs, the event has fired and Cancel
//     is a no-op — unless the callback rescheduled through the same variable
//     first, which is the legitimate timer-renewal idiom and is exempted.
var EventpoolAnalyzer = &analysis.Analyzer{
	Name:       "eventpool",
	Doc:        "flag discarded At/After event handles (use pooled Schedule/ScheduleAfter) and callbacks canceling their own fired handle",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: simvet.SuppressionsType,
	Run:        runEventpool,
}

func runEventpool(pass *analysis.Pass) (any, error) {
	rep := simvet.NewReporter(pass)
	if pass.Pkg.Name() == "sim" {
		// The scheduler implements both families; its internals are exempt the
		// same way pkt is for the buffer analyzers.
		return rep.Finish(), nil
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.ExprStmt)(nil), (*ast.AssignStmt)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, name := kernelAtAfter(pass.TypesInfo, n.X); call != nil {
				reportDiscard(rep, call, name)
			}
		case *ast.AssignStmt:
			checkAssign(pass, rep, n)
		}
	})
	return rep.Finish(), nil
}

// checkAssign covers the two assignment shapes: a handle bound to the blank
// identifier (discard) and a handle bound to a variable whose callback
// cancels it (self-cancel).
func checkAssign(pass *analysis.Pass, rep *simvet.Reporter, n *ast.AssignStmt) {
	for i, rhs := range n.Rhs {
		call, name := kernelAtAfter(pass.TypesInfo, rhs)
		if call == nil || i >= len(n.Lhs) {
			continue
		}
		lhs := ast.Unparen(n.Lhs[i])
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			reportDiscard(rep, call, name)
			continue
		}
		root, path := simplePath(pass.TypesInfo, lhs)
		if root == nil {
			continue
		}
		// Self-cancel: the scheduled closure cancels the very handle it was
		// bound to, without first renewing it.
		if len(call.Args) < 2 {
			continue
		}
		lit, ok := call.Args[1].(*ast.FuncLit)
		if !ok {
			continue
		}
		if cancel := selfCancel(pass.TypesInfo, lit, root, path); cancel != nil {
			rep.Reportf(cancel, "callback cancels its own handle %s: the event has already fired when the callback runs, so Cancel is a no-op — reschedule through the variable first or drop the call", path)
		}
	}
}

func reportDiscard(rep *simvet.Reporter, call *ast.CallExpr, name string) {
	pooled := "Schedule"
	if name == "After" {
		pooled = "ScheduleAfter"
	}
	rep.Reportf(call, "discards the *sim.Event handle returned by %s: the handle exists only to be retained for Cancel — use the pooled %s for fire-and-forget events", name, pooled)
}

// kernelAtAfter returns the call and method name when e is a call to At or
// After on a value of a named type Kernel (matched by name, like the other
// simvet analyzers, so single-package fixtures work).
func kernelAtAfter(info *types.Info, e ast.Expr) (*ast.CallExpr, string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, ""
	}
	if fn.Name() != "At" && fn.Name() != "After" {
		return nil, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Kernel" {
		return nil, ""
	}
	// Only the handle-returning family is in scope: a Kernel whose At/After
	// return nothing has no handle to discard.
	if sig.Results().Len() != 1 {
		return nil, ""
	}
	if _, ok := sig.Results().At(0).Type().(*types.Pointer); !ok {
		return nil, ""
	}
	return call, fn.Name()
}

// simplePath reduces an lvalue to (root object, dotted path) when it is a
// plain identifier or a selector chain off one (h, c.retry, s.timer.ev).
// Anything with indexing or calls is not comparable and returns nil.
func simplePath(info *types.Info, e ast.Expr) (types.Object, string) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.ObjectOf(e); obj != nil {
			return obj, e.Name
		}
	case *ast.SelectorExpr:
		root, path := simplePath(info, e.X)
		if root != nil {
			return root, path + "." + e.Sel.Name
		}
	}
	return nil, ""
}

// selfCancel returns the offending Cancel call when lit's body cancels the
// handle at (root, path) without any assignment to that path occurring in
// the body (an assignment means the callback renews the timer — the
// legitimate idiom — and the Cancel may target the new handle).
func selfCancel(info *types.Info, lit *ast.FuncLit, root types.Object, path string) *ast.CallExpr {
	var cancel *ast.CallExpr
	renewed := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if r, p := simplePath(info, lhs); r == root && p == path {
					renewed = true
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Cancel" {
				return true
			}
			if r, p := simplePath(info, sel.X); r == root && p == path && cancel == nil {
				cancel = n
			}
		}
		return true
	})
	if renewed {
		return nil
	}
	return cancel
}
