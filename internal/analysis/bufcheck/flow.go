package bufcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	simvet "repro/internal/analysis"
)

// BufleakAnalyzer enforces the release obligation: every owned *pkt.Buf must
// be released or transferred on every path to return.
var BufleakAnalyzer = &analysis.Analyzer{
	Name:       "bufleak",
	Doc:        "flag *pkt.Buf references that are acquired but not released or ownership-transferred on some path",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: simvet.SuppressionsType,
	Run: func(pass *analysis.Pass) (any, error) {
		return runFlow(pass, modeLeak)
	},
}

// BufuseafterAnalyzer enforces the handoff fence: a buffer local must not be
// used after Release() or after an ownership-transferring call (re-acquiring
// via Retain() before the handoff is the sanctioned pattern).
var BufuseafterAnalyzer = &analysis.Analyzer{
	Name:       "bufuseafter",
	Doc:        "flag uses of a *pkt.Buf local after Release or after ownership was transferred",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: simvet.SuppressionsType,
	Run: func(pass *analysis.Pass) (any, error) {
		return runFlow(pass, modeUseAfter)
	},
}

// checkMode selects which diagnostic class a flow run reports. Both analyzers
// execute the same transfer functions over the same CFGs so their state
// machines never disagree; only the reporting differs.
type checkMode int

const (
	modeLeak checkMode = iota
	modeUseAfter
)

// state is the per-variable abstract state of the ownership lattice.
type state uint8

const (
	stBottom      state = iota // path not yet reached / variable not yet live
	stNil                      // definitely nil: no obligation
	stOwned                    // holds an owned reference: release or transfer before return
	stBorrowed                 // borrow-mode parameter: usable, but not ours to release or give away
	stReleased                 // released: any further use is a bug
	stTransferred              // ownership handed off: any further use is a bug
	stDead                     // merged released/transferred/nil paths: dead either way
	stUnknown                  // escaped, aliased, or conflicting: tracking abandoned
)

// isDead reports whether s means "the reference must no longer be used".
func isDead(s state) bool {
	return s == stReleased || s == stTransferred || s == stDead
}

// join merges the states of two control-flow paths. The second result is true
// for the one irreconcilable combination — owned on one path, dead on the
// other — which is exactly the "released on some paths, leaked on the rest"
// bug bufleak exists to catch; the caller reports it and tracking degrades to
// stUnknown.
func join(a, b state) (state, bool) {
	if a == b {
		return a, false
	}
	if a == stBottom {
		return b, false
	}
	if b == stBottom {
		return a, false
	}
	if a == stUnknown || b == stUnknown {
		return stUnknown, false
	}
	if (isDead(a) || a == stNil) && (isDead(b) || b == stNil) {
		return stDead, false
	}
	if (a == stNil && b == stOwned) || (a == stOwned && b == stNil) {
		// The obligation survives the merge; a later `if pb != nil` branch
		// refines the nil path back out (see refine).
		return stOwned, false
	}
	if a == stBorrowed || b == stBorrowed {
		return stUnknown, false
	}
	return stUnknown, true
}

// varMeta is per-variable bookkeeping that exists only to make diagnostics
// specific; it never influences the fixpoint.
type varMeta struct {
	obj      types.Object
	acqPos   token.Pos // last acquisition site seen in source order
	killWhat string    // how the reference died: "Release" or "the handoff to X"
	killPos  token.Pos
}

// valKind classifies what an evaluated expression denotes to the tracker.
type valKind int

const (
	valOther      valKind = iota
	valNil                // the predeclared nil
	valVar                // a tracked *pkt.Buf variable (value.vi)
	valOwned              // a fresh owned reference (a call returning *pkt.Buf)
	valOwnedTuple         // a multi-result call with *pkt.Buf components (value.ownedIdx)
)

type value struct {
	kind     valKind
	vi       int
	ownedIdx []int
	desc     string // callee description for valOwned diagnostics
}

// funcFlow analyzes one function body (declaration or literal).
type funcFlow struct {
	pass      *analysis.Pass
	rep       *simvet.Reporter
	mode      checkMode
	info      *types.Info
	vars      map[types.Object]int
	meta      []*varMeta
	results   []int // tracked indexes of named *pkt.Buf results (naked-return transfer)
	reporting bool  // true only during the final, deterministic reporting walk
}

// runFlow drives one analyzer mode over every function in the pass.
func runFlow(pass *analysis.Pass, mode checkMode) (any, error) {
	rep := simvet.NewReporter(pass)
	if pass.Pkg.Name() == "pkt" {
		// The pkt package implements the Buf lifecycle; its freelist stores and
		// refcount plumbing cannot be expressed in the ownership vocabulary.
		return rep.Finish(), nil
	}
	// Self-recording makes single-package harnesses (vettest) work without the
	// driver's cross-package facts pre-pass.
	RecordOwnerFacts(pass.Fset, pass.Files, pass.TypesInfo)

	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				analyzeFunc(pass, rep, mode, fn, fn.Body)
			}
		case *ast.FuncLit:
			analyzeFunc(pass, rep, mode, nil, fn.Body)
		}
	})
	return rep.Finish(), nil
}

// analyzeFunc runs the two-phase dataflow over one body: a worklist fixpoint
// to converge the per-block entry states, then a single deterministic walk in
// block-index order that re-applies the transfer functions with reporting on.
func analyzeFunc(pass *analysis.Pass, rep *simvet.Reporter, mode checkMode, decl *ast.FuncDecl, body *ast.BlockStmt) {
	f := &funcFlow{
		pass: pass,
		rep:  rep,
		mode: mode,
		info: pass.TypesInfo,
		vars: map[types.Object]int{},
	}
	// Even a function with no trackable variables is analyzed: discarding an
	// owned call result (pool.Get() as a bare statement) needs no variables.
	entry := f.collectVars(decl, body)
	if entry == nil {
		entry = []state{} // non-nil: nil marks an unreachable block below
	}
	g := cfg.New(body, mayReturn)

	// Phase 1: worklist fixpoint over block entry states.
	in := make([][]state, len(g.Blocks))
	in[0] = entry
	work := []*cfg.Block{g.Blocks[0]}
	queued := map[int32]bool{0: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false
		st := cloneStates(in[b.Index])
		for _, n := range b.Nodes {
			f.applyNode(st, n)
		}
		for i, succ := range b.Succs {
			edge := st
			if len(b.Succs) == 2 {
				edge = cloneStates(st)
				f.refineEdge(edge, b, i == 0)
			}
			if mergeInto(in, succ.Index, edge) && !queued[succ.Index] {
				queued[succ.Index] = true
				work = append(work, succ)
			}
		}
	}

	// Phase 2: deterministic reporting walk, block-index order.
	f.reporting = true
	for _, b := range g.Blocks {
		if in[b.Index] == nil {
			continue
		}
		st := cloneStates(in[b.Index])
		for _, n := range b.Nodes {
			f.applyNode(st, n)
		}
	}
	f.reporting = false

	// Phase 3 (bufleak only): merge-point conflicts. A variable that arrives
	// owned along one edge and dead along another is released on some paths
	// and leaked on the rest; the fixpoint degraded it to stUnknown, so the
	// return sweep cannot see it — report it at the merge.
	if mode == modeLeak {
		f.reportConflicts(g, in)
	}
}

// collectVars registers the trackable variables of this function — transfer-
// and borrow-contract *pkt.Buf parameters, named *pkt.Buf results, and every
// *pkt.Buf local declared in the body outside nested function literals — and
// returns the entry state vector.
func (f *funcFlow) collectVars(decl *ast.FuncDecl, body *ast.BlockStmt) []state {
	var entry []state
	track := func(obj types.Object, s state) int {
		if obj == nil || !simvet.IsBufPtr(obj.Type()) {
			return -1
		}
		if vi, ok := f.vars[obj]; ok {
			return vi
		}
		vi := len(f.meta)
		f.vars[obj] = vi
		f.meta = append(f.meta, &varMeta{obj: obj})
		entry = append(entry, s)
		return vi
	}

	if decl != nil {
		paramState := stUnknown
		if fn, ok := f.info.Defs[decl.Name].(*types.Func); ok {
			switch ownerModeOf(fn) {
			case simvet.OwnerTransfer:
				// The function owns its buffer parameters: the release
				// obligation is checked against its own body.
				paramState = stOwned
			case simvet.OwnerBorrow:
				paramState = stBorrowed
			}
		}
		for _, field := range decl.Type.Params.List {
			for _, name := range field.Names {
				if vi := track(f.info.Defs[name], paramState); vi >= 0 && paramState == stOwned {
					f.meta[vi].acqPos = name.Pos()
				}
			}
		}
		if decl.Type.Results != nil {
			for _, field := range decl.Type.Results.List {
				for _, name := range field.Names {
					if vi := track(f.info.Defs[name], stNil); vi >= 0 {
						f.results = append(f.results, vi)
					}
				}
			}
		}
		if decl.Recv != nil {
			for _, field := range decl.Recv.List {
				for _, name := range field.Names {
					// A *pkt.Buf receiver would be a pkt-internal method;
					// track as unknown so uses are at least not misreported.
					track(f.info.Defs[name], stUnknown)
				}
			}
		}
	}

	// Locals: every *pkt.Buf defined in the body, excluding nested FuncLits
	// (each literal is analyzed as its own function).
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj, ok := f.info.Defs[id]; ok && obj != nil {
				track(obj, stBottom)
			}
		}
		return true
	})
	return entry
}

func cloneStates(st []state) []state {
	out := make([]state, len(st))
	copy(out, st)
	return out
}

// mergeInto joins edge into in[idx], reporting whether anything changed.
func mergeInto(in [][]state, idx int32, edge []state) bool {
	if in[idx] == nil {
		in[idx] = cloneStates(edge)
		return true
	}
	changed := false
	for vi := range edge {
		j, _ := join(in[idx][vi], edge[vi])
		if j != in[idx][vi] {
			in[idx][vi] = j
			changed = true
		}
	}
	return changed
}

// refineEdge sharpens states along a conditional edge when the branch
// condition is (or conjoins/disjoins) a nil comparison of a tracked variable:
// on the "is nil" edge an owned buffer becomes stNil, which is what lets the
// `if pb != nil { pb.Release() }` idiom pass the leak check.
func (f *funcFlow) refineEdge(st []state, b *cfg.Block, branch bool) {
	if len(b.Nodes) == 0 {
		return
	}
	cond, ok := b.Nodes[len(b.Nodes)-1].(ast.Expr)
	if !ok {
		return
	}
	f.refineCond(st, cond, branch)
}

func (f *funcFlow) refineCond(st []state, cond ast.Expr, branch bool) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			f.refineCond(st, e.X, !branch)
		}
	case *ast.BinaryExpr:
		switch {
		case e.Op == token.LAND && branch:
			f.refineCond(st, e.X, true)
			f.refineCond(st, e.Y, true)
		case e.Op == token.LOR && !branch:
			f.refineCond(st, e.X, false)
			f.refineCond(st, e.Y, false)
		case e.Op == token.EQL || e.Op == token.NEQ:
			vi, isNilCmp := f.nilCompare(e)
			if !isNilCmp || vi < 0 {
				return
			}
			// EQL on the true edge / NEQ on the false edge ⇒ value is nil here.
			if branch == (e.Op == token.EQL) && st[vi] == stOwned {
				st[vi] = stNil
			}
		}
	}
}

// nilCompare returns the tracked-variable index when e compares a tracked
// identifier against nil, and whether it is such a comparison at all.
func (f *funcFlow) nilCompare(e *ast.BinaryExpr) (int, bool) {
	x, y := ast.Unparen(e.X), ast.Unparen(e.Y)
	xNil := f.isNilExpr(x)
	yNil := f.isNilExpr(y)
	if xNil == yNil {
		return -1, false
	}
	varSide := x
	if xNil {
		varSide = y
	}
	if id, ok := varSide.(*ast.Ident); ok {
		if vi, ok := f.vars[f.info.ObjectOf(id)]; ok {
			return vi, true
		}
	}
	return -1, true
}

func (f *funcFlow) isNilExpr(e ast.Expr) bool {
	tv, ok := f.info.Types[e]
	return ok && tv.IsNil()
}

// shortPos renders a position as file.go:line for diagnostics.
func (f *funcFlow) shortPos(p token.Pos) string {
	pos := f.pass.Fset.Position(p)
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}

// leakf reports a bufleak-class diagnostic (only in the reporting phase of
// the bufleak run).
func (f *funcFlow) leakf(rng analysis.Range, format string, args ...any) {
	if f.reporting && f.mode == modeLeak {
		f.rep.Reportf(rng, format, args...)
	}
}

// usef reports a bufuseafter-class diagnostic.
func (f *funcFlow) usef(rng analysis.Range, format string, args ...any) {
	if f.reporting && f.mode == modeUseAfter {
		f.rep.Reportf(rng, format, args...)
	}
}

// deadDesc describes how a dead reference died, for use-after messages.
func (f *funcFlow) deadDesc(vi int, s state) string {
	m := f.meta[vi]
	switch {
	case s == stReleased && m.killPos.IsValid():
		return fmt.Sprintf("Release (%s)", f.shortPos(m.killPos))
	case s == stReleased:
		return "Release"
	case s == stTransferred && m.killPos.IsValid() && m.killWhat != "":
		return fmt.Sprintf("%s (%s)", m.killWhat, f.shortPos(m.killPos))
	case s == stTransferred && m.killWhat != "":
		return m.killWhat
	case s == stTransferred:
		return "the ownership handoff"
	}
	return "it was released or handed off on every path here"
}

// use applies the read fence: reading a dead reference is the bufuseafter
// diagnostic; afterwards tracking degrades so each misuse reports once.
func (f *funcFlow) use(st []state, vi int, rng analysis.Range) {
	if !isDead(st[vi]) {
		return
	}
	f.usef(rng, "uses buffer %q after %s; Retain() before the handoff if the bytes are still needed", f.meta[vi].obj.Name(), f.deadDesc(vi, st[vi]))
	st[vi] = stUnknown
}

// kill applies Release() to a tracked variable.
func (f *funcFlow) kill(st []state, vi int, rng analysis.Range) {
	switch {
	case isDead(st[vi]):
		f.usef(rng, "releases buffer %q again: it already died via %s", f.meta[vi].obj.Name(), f.deadDesc(vi, st[vi]))
		st[vi] = stUnknown
	case st[vi] == stBorrowed:
		f.leakf(rng, "releases borrowed buffer %q: this function's //simvet:owner borrow contract leaves the release obligation with the caller", f.meta[vi].obj.Name())
		st[vi] = stUnknown
	default:
		if f.reporting {
			f.meta[vi].killWhat = "Release"
			f.meta[vi].killPos = rng.Pos()
		}
		st[vi] = stReleased
	}
}

// transfer moves ownership out of a tracked variable (transfer-call argument,
// return value, struct/slice/map store, channel send, append).
func (f *funcFlow) transfer(st []state, vi int, rng analysis.Range, what string) {
	switch {
	case isDead(st[vi]):
		f.usef(rng, "hands off buffer %q after %s; Retain() before the handoff if the bytes are still needed", f.meta[vi].obj.Name(), f.deadDesc(vi, st[vi]))
		st[vi] = stUnknown
	case st[vi] == stBorrowed:
		f.leakf(rng, "gives away borrowed buffer %q via %s: this function's //simvet:owner borrow contract means it is not ours to transfer", f.meta[vi].obj.Name(), what)
		st[vi] = stUnknown
	default:
		if f.reporting {
			f.meta[vi].killWhat = what
			f.meta[vi].killPos = rng.Pos()
		}
		st[vi] = stTransferred
	}
}

// escape abandons tracking of a variable (address taken, captured by a
// closure, aliased, deferred, sent into code the CFG cannot follow).
func (f *funcFlow) escape(st []state, vi int) {
	st[vi] = stUnknown
}

// escapeAllIn abandons every tracked variable referenced anywhere inside n.
func (f *funcFlow) escapeAllIn(st []state, n ast.Node) {
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok {
			if vi, ok := f.vars[f.info.ObjectOf(id)]; ok {
				f.escape(st, vi)
			}
		}
		return true
	})
}

// applyNode is the transfer function for one CFG node.
func (f *funcFlow) applyNode(st []state, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		f.applyAssign(st, n)
	case *ast.ValueSpec:
		if len(n.Names) > 1 && len(n.Values) == 1 {
			// var a, b = f() — tuple form.
			v := f.eval(st, n.Values[0], true)
			owned := map[int]bool{}
			for _, i := range v.ownedIdx {
				owned[i] = true
			}
			for i, name := range n.Names {
				f.bindTuple(st, name, owned[i], v.desc)
			}
			return
		}
		for i, name := range n.Names {
			var rhs ast.Expr
			if i < len(n.Values) {
				rhs = n.Values[i]
			}
			f.assignOne(st, name, rhs)
		}
	case *ast.ReturnStmt:
		f.applyReturn(st, n)
	case *ast.ExprStmt:
		v := f.eval(st, n.X, true)
		if v.kind == valOwned || v.kind == valOwnedTuple {
			f.leakf(n, "discards an owned *pkt.Buf: the result of %s is never bound, released, or transferred", v.desc)
		}
	case *ast.SendStmt:
		f.eval(st, n.Chan, true)
		v := f.eval(st, n.Value, false)
		if v.kind == valVar {
			f.transfer(st, v.vi, n, "the channel send")
		}
	case *ast.IncDecStmt:
		f.eval(st, n.X, true)
	case *ast.GoStmt:
		f.escapeAllIn(st, n.Call)
	case *ast.DeferStmt:
		// defer runs at every exit; the CFG cannot sequence it, so anything it
		// touches leaves the tracked world. This is what keeps the idiomatic
		// `defer pb.Release()` from reporting as a leak at each return.
		f.escapeAllIn(st, n.Call)
	case *ast.Ident:
		// A bare identifier node is a binding context: a range Key/Value or a
		// select comm assignment target. The value comes from outside the
		// tracked world.
		if vi, ok := f.vars[f.info.ObjectOf(n)]; ok {
			f.escape(st, vi)
		}
	case ast.Expr:
		f.eval(st, n, true)
	}
}

// applyAssign handles = and := in all their arities.
func (f *funcFlow) applyAssign(st []state, n *ast.AssignStmt) {
	if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
		// Tuple form: pb, err := acquire()
		v := f.eval(st, n.Rhs[0], true)
		owned := map[int]bool{}
		for _, i := range v.ownedIdx {
			owned[i] = true
		}
		for i, lhs := range n.Lhs {
			f.bindTuple(st, lhs, owned[i], v.desc)
		}
		return
	}
	for i, lhs := range n.Lhs {
		var rhs ast.Expr
		if i < len(n.Rhs) {
			rhs = n.Rhs[i]
		}
		f.assignOne(st, lhs, rhs)
	}
}

// bindTuple binds one leg of a multi-result call.
func (f *funcFlow) bindTuple(st []state, lhs ast.Expr, ownedLeg bool, desc string) {
	id, isIdent := ast.Unparen(lhs).(*ast.Ident)
	if isIdent && id.Name == "_" {
		if ownedLeg {
			f.leakf(lhs, "discards an owned *pkt.Buf: the %s result bound to _ is never released or transferred", desc)
		}
		return
	}
	if isIdent {
		if vi, ok := f.vars[f.info.ObjectOf(id)]; ok {
			f.overwriteCheck(st, vi, lhs)
			if ownedLeg {
				st[vi] = stOwned
				if f.reporting {
					f.meta[vi].acqPos = lhs.Pos()
				}
			} else {
				st[vi] = stUnknown
			}
			return
		}
	}
	// Store into a field/index/captured variable: an owned leg is consumed by
	// the store (a declared sink); nothing else to track.
	if !isIdent {
		f.evalStoreTarget(st, lhs)
	}
}

// overwriteCheck flags clobbering a still-owned reference.
func (f *funcFlow) overwriteCheck(st []state, vi int, rng analysis.Range) {
	if st[vi] == stOwned {
		f.leakf(rng, "overwrites buffer %q while it is still owned; release or transfer it first", f.meta[vi].obj.Name())
	}
}

// assignOne handles a single lhs = rhs pair (rhs nil for a bare var decl).
func (f *funcFlow) assignOne(st []state, lhs, rhs ast.Expr) {
	var v value
	if rhs != nil {
		// A tracked rhs identifier is evaluated as a move, not a read: the
		// alias analysis below decides what it means.
		_, rhsIsIdent := ast.Unparen(rhs).(*ast.Ident)
		v = f.eval(st, rhs, !rhsIsIdent)
	} else {
		v = value{kind: valNil}
	}

	lhsId, isIdent := ast.Unparen(lhs).(*ast.Ident)
	switch {
	case isIdent && lhsId.Name == "_":
		if v.kind == valOwned || v.kind == valOwnedTuple {
			f.leakf(lhs, "discards an owned *pkt.Buf: the result of %s bound to _ is never released or transferred", v.desc)
		}
		if v.kind == valVar {
			f.use(st, v.vi, rhs) // _ = pb is still a read of pb
		}
	case isIdent:
		vi, tracked := f.vars[f.info.ObjectOf(lhsId)]
		if !tracked {
			// Untracked *pkt.Buf target: a captured outer variable (when
			// analyzing a literal) — the store is a sink for an owned value,
			// and an escape for a tracked one.
			if v.kind == valVar {
				f.transfer(st, v.vi, lhs, "the store to a captured variable")
			}
			return
		}
		f.overwriteCheck(st, vi, lhs)
		switch v.kind {
		case valNil:
			st[vi] = stNil
		case valOwned:
			st[vi] = stOwned
			if f.reporting {
				f.meta[vi].acqPos = lhs.Pos()
			}
		case valVar:
			if v.vi == vi {
				return // x = x
			}
			f.use(st, v.vi, rhs)
			// Aliasing: two names for one reference defeats per-name release
			// accounting; both leave the tracked world.
			f.escape(st, v.vi)
			f.escape(st, vi)
		default:
			// Field read, map read, function result we do not understand…
			st[vi] = stUnknown
		}
	default:
		// Store through a selector/index/deref: a declared ownership sink.
		f.evalStoreTarget(st, lhs)
		if v.kind == valVar {
			f.transfer(st, v.vi, lhs, "the store to a field or element")
		}
		// An owned call result stored into a structure is consumed by the sink.
	}
}

// evalStoreTarget evaluates the base expression of a compound store target
// (s.f = …, m[k] = …, *p = …) for its reads without treating the target
// itself as a read.
func (f *funcFlow) evalStoreTarget(st []state, lhs ast.Expr) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		f.eval(st, e.X, true)
	case *ast.IndexExpr:
		f.eval(st, e.X, true)
		f.eval(st, e.Index, true)
	case *ast.StarExpr:
		f.eval(st, e.X, true)
	}
}

// applyReturn transfers returned buffers to the caller and then sweeps for
// leaks: anything still owned at a return neither escaped nor was settled.
func (f *funcFlow) applyReturn(st []state, n *ast.ReturnStmt) {
	for _, res := range n.Results {
		v := f.eval(st, res, false)
		if v.kind == valVar {
			f.transfer(st, v.vi, res, "the return")
		}
	}
	if len(n.Results) == 0 {
		// Naked return: named results transfer implicitly.
		for _, vi := range f.results {
			if st[vi] == stOwned {
				st[vi] = stTransferred
			}
		}
	}
	for vi, s := range st {
		if s != stOwned {
			continue
		}
		m := f.meta[vi]
		if m.acqPos.IsValid() {
			f.leakf(n, "buffer %q acquired at %s is still owned at this return: release it or transfer ownership on every path", m.obj.Name(), f.shortPos(m.acqPos))
		} else {
			f.leakf(n, "buffer %q is still owned at this return: release it or transfer ownership on every path", m.obj.Name())
		}
		st[vi] = stUnknown // one report per leaked acquisition per return
	}
}

// eval evaluates an expression for its ownership effects. When read is true a
// tracked identifier at the top level is checked as a use; recursion into
// subexpressions always reads.
func (f *funcFlow) eval(st []state, e ast.Expr, read bool) value {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return f.eval(st, e.X, read)
	case *ast.Ident:
		if f.isNilExpr(e) {
			return value{kind: valNil}
		}
		vi, ok := f.vars[f.info.ObjectOf(e)]
		if !ok {
			return value{kind: valOther}
		}
		if read {
			f.use(st, vi, e)
		}
		return value{kind: valVar, vi: vi}
	case *ast.CallExpr:
		return f.evalCall(st, e)
	case *ast.FuncLit:
		// The literal is analyzed as its own function; from here it is an
		// opaque value that may retain every tracked variable it mentions.
		f.escapeAllIn(st, e.Body)
		return value{kind: valOther}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				if vi, ok := f.vars[f.info.ObjectOf(id)]; ok {
					f.escape(st, vi)
					return value{kind: valOther}
				}
			}
		}
		f.eval(st, e.X, true)
		return value{kind: valOther}
	case *ast.BinaryExpr:
		if (e.Op == token.EQL || e.Op == token.NEQ) && (f.isNilExpr(e.X) || f.isNilExpr(e.Y)) {
			// Comparing a dead pointer against nil is legitimate; no use fence.
			f.eval(st, e.X, false)
			f.eval(st, e.Y, false)
			return value{kind: valOther}
		}
		f.eval(st, e.X, true)
		f.eval(st, e.Y, true)
		return value{kind: valOther}
	case *ast.SelectorExpr:
		// A method value (pb.Release passed around as a func) retains the
		// receiver outside the CFG's view.
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if vi, ok := f.vars[f.info.ObjectOf(id)]; ok {
				f.use(st, vi, e.X)
				f.escape(st, vi)
				return value{kind: valOther}
			}
		}
		f.eval(st, e.X, true)
		return value{kind: valOther}
	case *ast.IndexExpr:
		f.eval(st, e.X, true)
		f.eval(st, e.Index, true)
		return value{kind: valOther}
	case *ast.SliceExpr:
		f.eval(st, e.X, true)
		for _, sub := range []ast.Expr{e.Low, e.High, e.Max} {
			if sub != nil {
				f.eval(st, sub, true)
			}
		}
		return value{kind: valOther}
	case *ast.StarExpr:
		f.eval(st, e.X, true)
		return value{kind: valOther}
	case *ast.TypeAssertExpr:
		f.eval(st, e.X, true)
		return value{kind: valOther}
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			target := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				f.eval(st, kv.Key, true)
				target = kv.Value
			}
			v := f.eval(st, target, false)
			if v.kind == valVar {
				// Storing into a composite value is a declared sink, the same
				// as a field store.
				f.transfer(st, v.vi, target, "the store into a composite literal")
			}
		}
		return value{kind: valOther}
	default:
		return value{kind: valOther}
	}
}

// evalCall is the heart of the contract check: it resolves the callee,
// applies Buf-method semantics (Release kills, Retain re-acquires), checks
// every *pkt.Buf argument against the callee's declared ownership mode, and
// classifies the result.
func (f *funcFlow) evalCall(st []state, call *ast.CallExpr) value {
	// Receiver / callee expression.
	var calleeFn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := f.info.Uses[fun.Sel].(*types.Func); ok {
			calleeFn = fn
		}
		if calleeFn != nil && recvIsBuf(calleeFn) {
			return f.evalBufMethod(st, call, fun, calleeFn)
		}
		f.eval(st, fun.X, true)
	case *ast.Ident:
		if fn, ok := f.info.Uses[fun].(*types.Func); ok {
			calleeFn = fn
		}
		if bi, ok := f.info.Uses[fun].(*types.Builtin); ok {
			return f.evalBuiltin(st, call, bi.Name())
		}
		// Conversions (pkt.Buf is never a conversion target of interest) and
		// plain function idents need no receiver evaluation.
	default:
		// Indirect call through an arbitrary expression.
		f.eval(st, call.Fun, true)
	}

	f.checkCallArgs(st, call, calleeFn)
	return f.callResult(st, call, calleeFn)
}

// recvIsBuf reports whether fn is a method of pkt.Buf.
func recvIsBuf(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if simvet.IsBufPtr(t) {
		return true
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Buf" && named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "pkt"
}

// evalBufMethod applies the lifecycle methods of pkt.Buf itself.
func (f *funcFlow) evalBufMethod(st []state, call *ast.CallExpr, sel *ast.SelectorExpr, fn *types.Func) value {
	recv := f.eval(st, sel.X, false)
	switch fn.Name() {
	case "Release":
		if recv.kind == valVar {
			f.kill(st, recv.vi, call)
		}
		return value{kind: valOther}
	default:
		// Retain, Bytes, Len, Push, Pop, … — reads of the receiver.
		if recv.kind == valVar {
			f.use(st, recv.vi, sel.X)
		}
	}
	for _, arg := range call.Args {
		f.eval(st, arg, true)
	}
	return f.callResult(st, call, fn)
}

// evalBuiltin handles append/copy (element stores are sinks) and the rest.
func (f *funcFlow) evalBuiltin(st []state, call *ast.CallExpr, name string) value {
	for i, arg := range call.Args {
		sink := (name == "append" && i > 0) || name == "copy"
		v := f.eval(st, arg, !sink)
		if sink && v.kind == valVar {
			f.transfer(st, v.vi, arg, "the store into a slice via "+name)
		}
	}
	return value{kind: valOther}
}

// checkCallArgs verifies every *pkt.Buf argument against the callee's
// contract. calleeFn may be nil for indirect calls; the signature still comes
// from the type of the call's function expression.
func (f *funcFlow) checkCallArgs(st []state, call *ast.CallExpr, calleeFn *types.Func) {
	var sig *types.Signature
	if tv, ok := f.info.Types[call.Fun]; ok {
		sig, _ = tv.Type.Underlying().(*types.Signature)
	}
	if sig == nil {
		// A conversion or something equally un-call-like: evaluate and leave.
		for _, arg := range call.Args {
			f.eval(st, arg, true)
		}
		return
	}

	mode := simvet.OwnerUnknown
	if calleeFn != nil {
		mode = ownerModeOf(calleeFn)
	}
	callee := "an indirect call"
	if calleeFn != nil {
		callee = calleeFn.Name()
	}

	for i, arg := range call.Args {
		paramIsBuf := false
		if i < sig.Params().Len() {
			t := sig.Params().At(i).Type()
			if sig.Variadic() && i == sig.Params().Len()-1 {
				if sl, ok := t.(*types.Slice); ok {
					t = sl.Elem()
				}
			}
			paramIsBuf = simvet.IsBufPtr(t)
		} else if sig.Variadic() && sig.Params().Len() > 0 {
			if sl, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
				paramIsBuf = simvet.IsBufPtr(sl.Elem())
			}
		}

		if !paramIsBuf {
			if v := f.eval(st, arg, false); v.kind == valVar {
				// A *pkt.Buf flowing into a non-Buf parameter (interface{},
				// unsafe plumbing): beyond the contract vocabulary.
				f.use(st, v.vi, arg)
				f.escape(st, v.vi)
			}
			continue
		}

		v := f.eval(st, arg, false)
		switch mode {
		case simvet.OwnerTransfer:
			if v.kind == valVar {
				f.transfer(st, v.vi, arg, fmt.Sprintf("the handoff to %s", callee))
			}
			// A fresh owned result passed straight through is consumed.
		case simvet.OwnerBorrow:
			switch v.kind {
			case valVar:
				f.use(st, v.vi, arg)
			case valOwned:
				f.leakf(arg, "passes a freshly acquired *pkt.Buf to %s, which only borrows it: the reference is never released", callee)
			}
		default:
			switch v.kind {
			case valVar:
				f.leakf(arg, "passes buffer %q to %s, whose ownership contract is undeclared: add //simvet:owner transfer|borrow to its declaration", f.meta[v.vi].obj.Name(), callee)
				f.escape(st, v.vi)
			case valOwned:
				f.leakf(arg, "passes a freshly acquired *pkt.Buf to %s, whose ownership contract is undeclared: add //simvet:owner transfer|borrow to its declaration", callee)
			}
		}
	}
}

// callResult classifies what the call produces: any call returning *pkt.Buf
// yields a fresh owned reference (pool Get/GetCopy, pkt.Wrap, Retain — the
// general acquisition rule).
func (f *funcFlow) callResult(st []state, call *ast.CallExpr, calleeFn *types.Func) value {
	tv, ok := f.info.Types[call]
	if !ok {
		return value{kind: valOther}
	}
	desc := "this call"
	if calleeFn != nil {
		desc = calleeFn.Name()
	}
	if simvet.IsBufPtr(tv.Type) {
		return value{kind: valOwned, desc: desc}
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		var owned []int
		for i := 0; i < tup.Len(); i++ {
			if simvet.IsBufPtr(tup.At(i).Type()) {
				owned = append(owned, i)
			}
		}
		if len(owned) > 0 {
			return value{kind: valOwnedTuple, ownedIdx: owned, desc: desc}
		}
	}
	return value{kind: valOther}
}

// reportConflicts re-derives each merge point's incoming edge states from the
// converged fixpoint and reports variables that arrive owned along one edge
// but dead along another: the conditionally-released buffer. Reports are
// deduplicated per (merge block, variable) and emitted in block-index order.
func (f *funcFlow) reportConflicts(g *cfg.CFG, in [][]state) {
	// Edge states out of every reachable block.
	type edge struct{ from, to int32 }
	edgeOut := map[edge][]state{}
	preds := make(map[int32][]int32)
	for _, b := range g.Blocks {
		if in[b.Index] == nil {
			continue
		}
		st := cloneStates(in[b.Index])
		for _, n := range b.Nodes {
			f.applyNode(st, n) // reporting is off: pure state evolution
		}
		for i, succ := range b.Succs {
			es := st
			if len(b.Succs) == 2 {
				es = cloneStates(st)
				f.refineEdge(es, b, i == 0)
			}
			edgeOut[edge{b.Index, succ.Index}] = es
			preds[succ.Index] = append(preds[succ.Index], b.Index)
		}
	}

	f.reporting = true
	defer func() { f.reporting = false }()
	for _, b := range g.Blocks {
		ps := preds[b.Index]
		if len(ps) < 2 {
			continue
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
		for vi := range f.meta {
			acc := stBottom
			conflict := false
			for _, p := range ps {
				es := edgeOut[edge{p, b.Index}]
				if es == nil {
					continue
				}
				var c bool
				acc, c = join(acc, es[vi])
				conflict = conflict || c
			}
			if !conflict {
				continue
			}
			rng := f.mergeRange(b)
			if rng == nil {
				continue
			}
			f.leakf(rng, "buffer %q is released or handed off on some paths into this point but still owned on others: settle ownership on every path before they merge", f.meta[vi].obj.Name())
		}
	}
}

// mergeRange picks something reportable at a merge block.
func (f *funcFlow) mergeRange(b *cfg.Block) analysis.Range {
	if len(b.Nodes) > 0 {
		return b.Nodes[0]
	}
	if b.Stmt != nil {
		return b.Stmt
	}
	return nil
}

// mayReturn is the cfg construction oracle: panic and the well-known
// process-exit calls never return.
func mayReturn(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name != "panic"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			full := id.Name + "." + fun.Sel.Name
			switch full {
			case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln", "runtime.Goexit":
				return false
			}
		}
	}
	return true
}
