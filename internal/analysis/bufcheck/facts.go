package bufcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"

	simvet "repro/internal/analysis"
)

// Ownership contracts are declared at function definitions (//simvet:owner)
// but consumed at call sites, which may live in a different package. The
// simvet driver typechecks each package exactly once per run, so a callee's
// *types.Func is the same object at its definition and at every call site;
// that makes a process-global map keyed by types.Object a sound facts store.
// The driver records facts for every target package before analyzing any of
// them (cross-package contracts); each analyzer additionally records its own
// pass's facts so single-package harnesses (vettest) work without a driver.
var (
	factsMu        sync.Mutex
	directiveFacts = map[types.Object]simvet.OwnerMode{}
)

// RecordOwnerFacts parses the //simvet:owner directives of files and stores
// the well-formed ones in the global facts table. Safe for concurrent use.
func RecordOwnerFacts(fset *token.FileSet, files []*ast.File, info *types.Info) {
	for _, od := range simvet.ParseOwnerDirectives(fset, files, info) {
		if od.WellFormed() {
			factsMu.Lock()
			directiveFacts[od.Fn] = od.Mode
			factsMu.Unlock()
		}
	}
}

// seededTransferNames is the facts a directive cannot express: interface
// methods have no declaration body to annotate, so the convention that any
// method named SendBuf takes ownership of its buffer (DESIGN.md §9 — the
// ethernet.NIC contract, matched by every implementation) is seeded here.
var seededTransferNames = map[string]bool{
	"SendBuf": true,
}

// ownerModeOf resolves the ownership contract of a callee: an explicit
// //simvet:owner directive wins, then the seeded name-convention table.
// OwnerUnknown means no contract is declared anywhere — passing an owned
// buffer to such a function is itself a bufleak diagnostic.
func ownerModeOf(fn *types.Func) simvet.OwnerMode {
	factsMu.Lock()
	m, ok := directiveFacts[fn]
	factsMu.Unlock()
	if ok {
		return m
	}
	if seededTransferNames[fn.Name()] {
		return simvet.OwnerTransfer
	}
	return simvet.OwnerUnknown
}
