// Package bufcheck is simvet's memory-ownership suite: a path-sensitive,
// CFG-based dataflow analysis over the repository's pooled packet buffers
// (*pkt.Buf) and pooled kernel events.
//
// The zero-copy encapsulation path (DESIGN.md §9) made every frame a
// refcounted buffer whose contract — release on every path including every
// error path, Retain before sharing, never touch after handoff — was until
// now enforced only dynamically, by the pool's poison-on-release debug mode,
// and only on the paths a scenario happened to execute. This package turns
// the contract into analyzers, the same move clang makes with consumed
// annotations, so a leaked or doubly released buffer is a build-time
// diagnostic instead of a cross-shard heisenbug:
//
//   - bufleak:     a function that acquires an owned buffer (pool Get/GetCopy,
//     pkt.Wrap, Retain — any call returning *pkt.Buf) must, on
//     every path to return, either Release it or transfer
//     ownership through a declared sink: a transfer-mode call,
//     a return value, a struct/slice/map store, or a channel
//     send. Calls that pass a buffer to a function with no
//     declared contract are themselves flagged.
//   - bufuseafter: no use of a buffer local after Release() or after an
//     ownership-transferring call, unless re-acquired via
//     Retain() first; double Release is the special case of
//     using a released buffer to release it again.
//   - eventpool:   kernel-event pool hygiene: the *sim.Event handle returned
//     by At/After exists only to be retained for Cancel — a
//     discarded handle must use the pooled Schedule/ScheduleAfter
//     instead — and a callback must not Cancel its own handle
//     (the event has already fired by the time it runs).
//
// Ownership conventions of called functions are declared at their definition
// with the //simvet:owner transfer|borrow directive (see internal/analysis,
// owner.go); a seeded facts table covers the cases a directive cannot reach —
// the SendBuf interface-method convention and the append/copy builtins. The
// analysis itself stays intra-procedural: every call site is checked against
// the callee's declared contract, never its body.
//
// The pkt package itself is exempt: it implements the lifecycle the
// vocabulary describes, so its internals (freelist stores, refcount
// manipulation) cannot be expressed in it.
package bufcheck

import (
	simvet "repro/internal/analysis"
)

// init contributes the three analyzers to the simvet suite in a fixed order.
// cmd/simvet and the analysis tests import this package, which is what makes
// //simvet:allow directives naming bufleak/bufuseafter/eventpool validate.
func init() {
	simvet.Register(BufleakAnalyzer, BufuseafterAnalyzer, EventpoolAnalyzer)
}
