package analysis_test

import (
	"path/filepath"
	"testing"

	simvet "repro/internal/analysis"
	"repro/internal/analysis/driver"
)

// TestRepoIsClean runs the full simvet suite over the repository itself —
// the same invocation as `go run ./cmd/simvet ./...` and the CI simvet job —
// and requires zero diagnostics. This is the determinism contract as a
// tier-1 test: any new wall-clock read, global rand draw, unsorted map
// iteration, single-float sort, or unguarded event closure in the tree turns
// this red.
//
// It doubles as the scope test: cmd/wepcrack and cmd/experiments legitimately
// time their own wall clock, and the run stays clean because walltime and
// globalrand only apply inside internal/.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the std closure from source; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	res, err := driver.Run(root, []string{"./..."}, simvet.All())
	if err != nil {
		t.Fatalf("simvet driver: %v", err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("simvet: %s", d)
	}
	if res.Packages < 20 {
		t.Errorf("analyzed only %d packages; expected the whole repo (>20) — pattern or driver regression", res.Packages)
	}
	for _, s := range res.Suppressions {
		if s.Reason == "" {
			t.Errorf("suppression without a reason at %s — simvetallow must reject this", s.Pos)
		}
		t.Logf("suppressed: %s: %s (reason: %s)", s.Pos, s.Analyzer, s.Reason)
	}
}
