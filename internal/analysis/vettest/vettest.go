// Package vettest is a miniature analysistest: it runs a single analyzer
// over a deliberate-violation fixture package under testdata/src and checks
// the reported diagnostics against `// want "regexp"` comments, analysistest
// style.
//
// The upstream golang.org/x/tools/go/analysis/analysistest is not vendored
// with the toolchain, so this package reimplements the useful core on top of
// the same driver cmd/simvet uses: fixtures are parsed directly (they are
// plain single-package programs importing only the standard library) and
// their std dependencies are typechecked from source through driver.Loader.
package vettest

import (
	"go/ast"
	"go/parser"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"golang.org/x/tools/go/analysis"

	simvet "repro/internal/analysis"
	"repro/internal/analysis/driver"
)

// loader is shared across tests in a binary: std packages are typechecked
// once per process, not once per fixture.
var (
	loaderOnce sync.Once
	loader     *driver.Loader
)

func sharedLoader(t *testing.T) *driver.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader = driver.NewLoader(".")
	})
	return loader
}

// Run applies analyzer a to the fixture package at testdata/src/<pkg> and
// fails the test unless the diagnostics exactly match the fixture's
// `// want "re"` expectations. It returns the //simvet:allow suppressions the
// run recorded so callers can assert on suppression behavior.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) []simvet.Suppression {
	t.Helper()
	diags, sups, files, l := run(t, a, pkg)
	checkExpectations(t, l, files, diags)
	return sups
}

// RunRaw is Run without `// want` matching: it returns the diagnostics for
// programmatic assertions. Used where expectations cannot be expressed as
// comments (e.g. diagnostics about the comments themselves).
func RunRaw(t *testing.T, a *analysis.Analyzer, pkg string) ([]driver.Diagnostic, []simvet.Suppression) {
	t.Helper()
	diags, sups, _, _ := run(t, a, pkg)
	return diags, sups
}

func run(t *testing.T, a *analysis.Analyzer, pkg string) ([]driver.Diagnostic, []simvet.Suppression, []*ast.File, *driver.Loader) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("vettest: %v", err)
	}

	l := sharedLoader(t)
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("vettest: parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("vettest: no Go files in %s", dir)
	}

	// Typecheck the fixture's std imports through the shared loader, then the
	// fixture itself against that universe.
	var imports []string
	for _, f := range files {
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports = append(imports, p)
			}
		}
	}
	if len(imports) > 0 {
		if _, err := l.LoadTypes(imports); err != nil {
			t.Fatalf("vettest: loading fixture imports: %v", err)
		}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{Importer: l.StdImporter()}
	tpkg, err := conf.Check(pkg, l.Fset, files, info)
	if err != nil {
		t.Fatalf("vettest: typechecking fixture %s: %v", pkg, err)
	}

	diags, sups, err := driver.RunAnalyzers(l.Fset, files, tpkg, info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("vettest: running %s: %v", a.Name, err)
	}
	return diags, sups, files, l
}

type key struct {
	file string
	line int
}

// checkExpectations matches diagnostics against // want comments 1:1.
func checkExpectations(t *testing.T, l *driver.Loader, files []*ast.File, diags []driver.Diagnostic) {
	t.Helper()
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[key][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := l.Fset.Position(c.Pos())
				for _, lit := range splitWants(c.Text[idx+len("// want "):]) {
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("vettest: bad want pattern %q at %s: %v", lit, pos, err)
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], &want{re: re})
				}
			}
		}
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		found := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s (%s)", d.Pos, d.Message, d.Analyzer)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w.re)
			}
		}
	}
}

// splitWants extracts the string literals of a want comment:
// `"a" "b"` or backquoted forms.
func splitWants(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			break
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			break
		}
		lit := s[:end+2]
		if unq, err := strconv.Unquote(lit); err == nil {
			out = append(out, unq)
		}
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}
