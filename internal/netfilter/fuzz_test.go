package netfilter

import (
	"encoding/binary"
	"testing"

	"repro/internal/inet"
	"repro/internal/ipv4"
)

// fuzzPacket builds a small TCP packet for exercising accepted rules.
func fuzzPacket(src, dst string, sp, dp inet.Port) *ipv4.Packet {
	payload := make([]byte, 20)
	binary.BigEndian.PutUint16(payload[0:2], uint16(sp))
	binary.BigEndian.PutUint16(payload[2:4], uint16(dp))
	payload[12] = 5 << 4
	return &ipv4.Packet{
		TTL: 64, Proto: ipv4.ProtoTCP,
		Src: inet.MustParseAddr(src), Dst: inet.MustParseAddr(dst),
		Payload: payload,
	}
}

// FuzzParseIptables drives the iptables command parser: arbitrary strings
// must never panic, and any accepted rule must survive a full five-chain
// packet traversal with the conntrack pairing invariant intact.
func FuzzParseIptables(f *testing.F) {
	f.Add("iptables -t nat -A PREROUTING -p tcp -d 198.18.0.80 --dport 80 -j DNAT --to 10.0.0.201:10101")
	f.Add("iptables -A FORWARD -p tcp -s 10.0.0.0/24 -j DROP")
	f.Add("iptables -t nat -A POSTROUTING -o eth1 -j SNAT --to 10.0.0.200")
	f.Add("iptables -A INPUT -j ACCEPT")
	f.Add("iptables -t nat -A PREROUTING --dport notaport -j DNAT --to x")
	f.Add("")
	f.Fuzz(func(t *testing.T, cmd string) {
		table := New()
		if _, err := table.ParseIptables(cmd); err != nil {
			return
		}
		pkt := fuzzPacket("10.0.0.3", "198.18.0.80", 49152, 80)
		for _, point := range []ipv4.HookPoint{
			ipv4.HookPrerouting, ipv4.HookInput, ipv4.HookForward,
			ipv4.HookOutput, ipv4.HookPostrouting,
		} {
			table.Filter(point, pkt, "wlan0", "eth1")
		}
		if err := table.CheckConntrack(); err != nil {
			t.Fatalf("conntrack pairing broken after %q: %v", cmd, err)
		}
	})
}
