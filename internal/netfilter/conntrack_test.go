package netfilter

import (
	"testing"

	"repro/internal/inet"
	"repro/internal/ipv4"
)

// traverse pushes a packet through the hooks a forwarded packet visits.
func traverse(t *Table, pkt *ipv4.Packet, in, out string) ipv4.Verdict {
	for _, point := range []ipv4.HookPoint{ipv4.HookPrerouting, ipv4.HookForward, ipv4.HookPostrouting} {
		if t.Filter(point, pkt, in, out) == ipv4.VerdictDrop {
			return ipv4.VerdictDrop
		}
	}
	return ipv4.VerdictAccept
}

func hp(addr string, port inet.Port) inet.HostPort {
	return inet.HostPort{Addr: inet.MustParseAddr(addr), Port: port}
}

func tuple(t *testing.T, pkt *ipv4.Packet) (src, dst inet.HostPort) {
	t.Helper()
	sp, dp, ok := transportPorts(pkt)
	if !ok {
		t.Fatal("packet lost its transport header")
	}
	return inet.HostPort{Addr: pkt.Src, Port: sp}, inet.HostPort{Addr: pkt.Dst, Port: dp}
}

// TestConntrackChainedNAT covers a flow that is both DNATed (PREROUTING
// redirect into a proxy) and SNATed (POSTROUTING masquerade) — the paper's
// gateway setup plus masquerading. Every packet after the first must get the
// full chained translation from conntrack alone, and replies must be fully
// un-translated, in both stage orders.
func TestConntrackChainedNAT(t *testing.T) {
	cases := []struct {
		name      string
		rules     []string
		wantSrc   inet.HostPort // forward packet, post-traversal
		wantDst   inet.HostPort
		replySrc  inet.HostPort // reply enters with the translated tuple reversed
		replyDst  inet.HostPort
		unSrc     inet.HostPort // reply after reverse translation
		unDst     inet.HostPort
		wantPairs int // conntrack entries after first packet
	}{
		{
			name: "dnat-only",
			rules: []string{
				"iptables -t nat -A PREROUTING -p tcp -d 198.18.0.80 --dport 80 -j DNAT --to 10.0.0.201:10101",
			},
			wantSrc: hp("10.0.0.3", 49152), wantDst: hp("10.0.0.201", 10101),
			replySrc: hp("10.0.0.201", 10101), replyDst: hp("10.0.0.3", 49152),
			unSrc: hp("198.18.0.80", 80), unDst: hp("10.0.0.3", 49152),
			wantPairs: 2,
		},
		{
			name: "snat-only",
			rules: []string{
				"iptables -t nat -A POSTROUTING -o eth1 -j SNAT --to 10.0.0.200",
			},
			wantSrc: hp("10.0.0.200", 49152), wantDst: hp("198.18.0.80", 80),
			replySrc: hp("198.18.0.80", 80), replyDst: hp("10.0.0.200", 49152),
			unSrc: hp("198.18.0.80", 80), unDst: hp("10.0.0.3", 49152),
			wantPairs: 2,
		},
		{
			name: "dnat-plus-snat-one-flow",
			rules: []string{
				"iptables -t nat -A PREROUTING -p tcp -d 198.18.0.80 --dport 80 -j DNAT --to 10.0.0.201:10101",
				"iptables -t nat -A POSTROUTING -o eth1 -j SNAT --to 10.0.0.200",
			},
			wantSrc: hp("10.0.0.200", 49152), wantDst: hp("10.0.0.201", 10101),
			replySrc: hp("10.0.0.201", 10101), replyDst: hp("10.0.0.200", 49152),
			unSrc: hp("198.18.0.80", 80), unDst: hp("10.0.0.3", 49152),
			wantPairs: 4,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			table := New()
			for _, r := range tc.rules {
				if _, err := table.ParseIptables(r); err != nil {
					t.Fatal(err)
				}
			}

			// First packet: translated by the NAT rules.
			first := fuzzPacket("10.0.0.3", "198.18.0.80", 49152, 80)
			traverse(table, first, "wlan0", "eth1")
			src, dst := tuple(t, first)
			if src != tc.wantSrc || dst != tc.wantDst {
				t.Fatalf("first packet: %v->%v, want %v->%v", src, dst, tc.wantSrc, tc.wantDst)
			}
			if got := table.ConntrackLen(); got != tc.wantPairs {
				t.Fatalf("conntrack entries = %d, want %d", got, tc.wantPairs)
			}
			if err := table.CheckConntrack(); err != nil {
				t.Fatal(err)
			}

			// Second packet: identical tuple, must be translated identically
			// by conntrack alone (all NAT stages, not just the first).
			second := fuzzPacket("10.0.0.3", "198.18.0.80", 49152, 80)
			traverse(table, second, "wlan0", "eth1")
			src, dst = tuple(t, second)
			if src != tc.wantSrc || dst != tc.wantDst {
				t.Fatalf("second packet: %v->%v, want %v->%v (conntrack must apply the full chain)",
					src, dst, tc.wantSrc, tc.wantDst)
			}

			// Reply: reversed translated tuple, must be fully un-translated.
			reply := fuzzPacket(tc.replySrc.Addr.String(), tc.replyDst.Addr.String(),
				tc.replySrc.Port, tc.replyDst.Port)
			traverse(table, reply, "eth1", "wlan0")
			src, dst = tuple(t, reply)
			if src != tc.unSrc || dst != tc.unDst {
				t.Fatalf("reply: %v->%v, want %v->%v", src, dst, tc.unSrc, tc.unDst)
			}
			if err := table.CheckConntrack(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConntrackExpiry models conntrack entry expiry with FlushConntrack: an
// established DNATed flow loses its state mid-stream. Subsequent original-
// direction packets re-match the NAT rule (a fresh flow, re-translated);
// reply-direction packets no longer match anything and pass through
// untranslated — the breakage real expiry causes.
func TestConntrackExpiry(t *testing.T) {
	table := New()
	if _, err := table.ParseIptables(
		"iptables -t nat -A PREROUTING -p tcp -d 198.18.0.80 --dport 80 -j DNAT --to 10.0.0.201:10101"); err != nil {
		t.Fatal(err)
	}

	first := fuzzPacket("10.0.0.3", "198.18.0.80", 49152, 80)
	traverse(table, first, "wlan0", "eth1")
	if table.ConntrackLen() != 2 {
		t.Fatalf("conntrack entries = %d, want 2", table.ConntrackLen())
	}

	table.FlushConntrack()
	if table.ConntrackLen() != 0 {
		t.Fatalf("conntrack entries after flush = %d, want 0", table.ConntrackLen())
	}
	if err := table.CheckConntrack(); err != nil {
		t.Fatal(err)
	}

	// Original direction: hits the rule again, state re-established.
	next := fuzzPacket("10.0.0.3", "198.18.0.80", 49152, 80)
	traverse(table, next, "wlan0", "eth1")
	if _, dst := tuple(t, next); dst != hp("10.0.0.201", 10101) {
		t.Fatalf("post-expiry original packet dst = %v, want re-DNAT to 10.0.0.201:10101", dst)
	}
	if table.ConntrackLen() != 2 {
		t.Fatalf("conntrack entries after re-translation = %d, want 2", table.ConntrackLen())
	}

	// A reply for state that expired before it was re-established is not
	// un-translated: flush again and send only the reply.
	table.FlushConntrack()
	reply := fuzzPacket("10.0.0.201", "10.0.0.3", 10101, 49152)
	traverse(table, reply, "eth1", "wlan0")
	if src, _ := tuple(t, reply); src != hp("10.0.0.201", 10101) {
		t.Fatalf("post-expiry reply src = %v, want untranslated 10.0.0.201:10101", src)
	}
}

// TestConntrackPairingDetectsCorruption proves the invariant has teeth: a
// hand-corrupted table must fail CheckConntrack.
func TestConntrackPairingDetectsCorruption(t *testing.T) {
	table := New()
	if _, err := table.ParseIptables(
		"iptables -t nat -A PREROUTING -p tcp -d 198.18.0.80 --dport 80 -j DNAT --to 10.0.0.201:10101"); err != nil {
		t.Fatal(err)
	}
	pkt := fuzzPacket("10.0.0.3", "198.18.0.80", 49152, 80)
	traverse(table, pkt, "wlan0", "eth1")
	if err := table.CheckConntrack(); err != nil {
		t.Fatalf("intact table failed check: %v", err)
	}

	// Delete one direction: the survivor is now unpaired.
	for key := range table.conntrack {
		delete(table.conntrack, key)
		break
	}
	if err := table.CheckConntrack(); err == nil {
		t.Fatal("CheckConntrack accepted a table with an unpaired entry")
	}
}
