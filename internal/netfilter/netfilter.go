// Package netfilter reproduces the slice of Linux Netfilter/iptables the
// paper's attack uses: chain-based packet filtering and NAT with connection
// tracking. The attack's key line (paper §4.1) is
//
//	iptables -t nat -A PREROUTING -p tcp -d Target-IP --dport 80 \
//	         -j DNAT --to Gateway-IP:10101
//
// which redirects the victim's web traffic into the local netsed proxy.
// ParseIptables accepts exactly that syntax so the examples can run the
// paper's commands verbatim.
package netfilter

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/inet"
	"repro/internal/ipv4"
	"repro/internal/sim"
)

// Target is a rule's action.
type Target int

// Targets.
const (
	TargetAccept Target = iota
	TargetDrop
	TargetDNAT
	TargetSNAT
)

// String names the target.
func (t Target) String() string {
	switch t {
	case TargetAccept:
		return "ACCEPT"
	case TargetDrop:
		return "DROP"
	case TargetDNAT:
		return "DNAT"
	case TargetSNAT:
		return "SNAT"
	}
	return "?"
}

// Match is a rule's match specification; zero-valued fields match anything.
type Match struct {
	Proto    uint8 // 0 = any
	Src, Dst *inet.Prefix
	SrcPort  inet.Port
	DstPort  inet.Port
	InIface  string
	OutIface string
}

// Rule is one chain entry.
type Rule struct {
	Match  Match
	Target Target
	// NATTo is the DNAT/SNAT translation target. Port 0 keeps the original
	// port.
	NATTo inet.HostPort
	// Counters.
	Packets uint64
	Bytes   uint64
}

// matches evaluates the rule against a packet.
func (r *Rule) matches(pkt *ipv4.Packet, in, out string) bool {
	m := &r.Match
	if m.Proto != 0 && pkt.Proto != m.Proto {
		return false
	}
	if m.Src != nil && !m.Src.Contains(pkt.Src) {
		return false
	}
	if m.Dst != nil && !m.Dst.Contains(pkt.Dst) {
		return false
	}
	if m.InIface != "" && m.InIface != in {
		return false
	}
	if m.OutIface != "" && m.OutIface != out {
		return false
	}
	if m.SrcPort != 0 || m.DstPort != 0 {
		sp, dp, ok := transportPorts(pkt)
		if !ok {
			return false
		}
		if m.SrcPort != 0 && sp != m.SrcPort {
			return false
		}
		if m.DstPort != 0 && dp != m.DstPort {
			return false
		}
	}
	return true
}

// natDone bits record which translation stages have touched a packet during
// its current traversal.
const (
	natDoneDst uint8 = 1 << iota // destination rewritten (DNAT stage)
	natDoneSrc                   // source rewritten (SNAT stage)
)

// flowKey identifies a transport flow for conntrack.
type flowKey struct {
	proto            uint8
	src, dst         inet.Addr
	srcPort, dstPort inet.Port
}

// natEntry records a translation applied to a flow.
type natEntry struct {
	// kind distinguishes DNAT from SNAT for reply handling.
	kind Target
	// orig is the pre-translation address (dst for DNAT, src for SNAT).
	orig inet.HostPort
	// to is the post-translation address.
	to inet.HostPort
}

// Table is a host's firewall: five chains plus NAT conntrack. Install it
// with stack.AddHook.
type Table struct {
	chains    map[ipv4.HookPoint][]*Rule
	conntrack map[flowKey]natEntry
	// translated marks which translation kinds a packet has already
	// received during its current traversal: NAT rules only ever see a
	// flow's first packet (Linux nat-table semantics), but a DNAT at
	// PREROUTING must not suppress an SNAT at POSTROUTING — each stage
	// applies independently, once per flow.
	translated map[*ipv4.Packet]uint8

	// Counters.
	Translations uint64
	Drops        uint64
}

// New returns an empty table (policy ACCEPT on every chain).
func New() *Table {
	return &Table{
		chains:     make(map[ipv4.HookPoint][]*Rule),
		conntrack:  make(map[flowKey]natEntry),
		translated: make(map[*ipv4.Packet]uint8),
	}
}

// Append adds a rule to a chain.
func (t *Table) Append(chain ipv4.HookPoint, r Rule) *Rule {
	rp := &r
	t.chains[chain] = append(t.chains[chain], rp)
	return rp
}

// Rules lists a chain's rules.
func (t *Table) Rules(chain ipv4.HookPoint) []*Rule { return t.chains[chain] }

// Filter implements ipv4.Hook.
func (t *Table) Filter(point ipv4.HookPoint, pkt *ipv4.Packet, in, out string) ipv4.Verdict {
	// Conntrack first (established translations bypass NAT rule
	// evaluation, and reply packets get the reverse translation).
	switch point {
	case ipv4.HookPrerouting, ipv4.HookOutput:
		delete(t.translated, pkt) // fresh traversal for this pointer
		if bits := t.applyConntrack(pkt); bits != 0 {
			t.translated[pkt] = bits
		}
	}
	tracked := t.translated[pkt]
	verdict := ipv4.VerdictAccept
	for _, r := range t.chains[point] {
		if !r.matches(pkt, in, out) {
			continue
		}
		// NAT rules see a flow's first packet only, per translation stage:
		// an already-DNATed packet skips further DNAT rules but remains
		// eligible for SNAT (and vice versa), as in Linux where PREROUTING
		// and POSTROUTING each set up their half of the flow's NAT state.
		if (r.Target == TargetDNAT && tracked&natDoneDst != 0) ||
			(r.Target == TargetSNAT && tracked&natDoneSrc != 0) {
			continue
		}
		r.Packets++
		r.Bytes += uint64(pkt.Len())
		done := true
		switch r.Target {
		case TargetAccept:
		case TargetDrop:
			t.Drops++
			verdict = ipv4.VerdictDrop
		case TargetDNAT:
			t.applyDNAT(pkt, r.NATTo)
			tracked |= natDoneDst
			t.translated[pkt] = tracked
		case TargetSNAT:
			t.applySNAT(pkt, r.NATTo)
			tracked |= natDoneSrc
			t.translated[pkt] = tracked
		}
		if done {
			break
		}
	}
	// Terminal hooks (and drops) end the traversal: release the marker.
	if verdict == ipv4.VerdictDrop || point == ipv4.HookInput || point == ipv4.HookPostrouting {
		delete(t.translated, pkt)
	}
	return verdict
}

// applyConntrack translates packets of flows with existing NAT state, both
// continuing originals and replies. A flow that was both DNATed and SNATed
// (e.g. PREROUTING DNAT into a proxy plus POSTROUTING masquerade) has one
// conntrack entry per rewrite, so translation iterates to a fixed point:
// after applying an entry the rewritten tuple is looked up again, exactly as
// Linux applies a conntrack entry's full translation. The chain is bounded
// by the number of NAT stages (visited keys guard against cycles). It
// returns the natDone bits for the stages it applied (0 = untouched).
func (t *Table) applyConntrack(pkt *ipv4.Packet) uint8 {
	var applied uint8
	var visited [4]flowKey // chains are at most DNAT+SNAT each way
	for n := 0; n < len(visited); n++ {
		sp, dp, ok := transportPorts(pkt)
		if !ok {
			break
		}
		key := flowKey{proto: pkt.Proto, src: pkt.Src, dst: pkt.Dst, srcPort: sp, dstPort: dp}
		cycle := false
		for i := 0; i < n; i++ {
			if visited[i] == key {
				cycle = true
				break
			}
		}
		if cycle {
			break
		}
		visited[n] = key
		e, ok := t.conntrack[key]
		if !ok {
			break
		}
		t.Translations++
		switch e.kind {
		case TargetDNAT:
			// Forward direction of a DNATed flow, or reply of an SNATed one.
			applied |= natDoneDst
			pkt.Dst = e.to.Addr
			if e.to.Port != 0 {
				setTransportPorts(pkt, sp, e.to.Port)
			}
		case TargetSNAT:
			applied |= natDoneSrc
			pkt.Src = e.to.Addr
			if e.to.Port != 0 {
				setTransportPorts(pkt, e.to.Port, dp)
			}
		}
		fixTransportChecksum(pkt)
	}
	return applied
}

// applyDNAT rewrites the destination and records both directions.
func (t *Table) applyDNAT(pkt *ipv4.Packet, to inet.HostPort) {
	sp, dp, _ := transportPorts(pkt)
	origDst := inet.HostPort{Addr: pkt.Dst, Port: dp}
	newPort := to.Port
	if newPort == 0 {
		newPort = dp
	}
	// Forward entry: future packets of this flow translate without rules.
	fwd := flowKey{proto: pkt.Proto, src: pkt.Src, dst: pkt.Dst, srcPort: sp, dstPort: dp}
	t.conntrack[fwd] = natEntry{kind: TargetDNAT, orig: origDst, to: inet.HostPort{Addr: to.Addr, Port: newPort}}
	// Reply entry: packets from the new destination back to the source get
	// their source rewritten to the original destination (un-DNAT).
	rev := flowKey{proto: pkt.Proto, src: to.Addr, dst: pkt.Src, srcPort: newPort, dstPort: sp}
	t.conntrack[rev] = natEntry{kind: TargetSNAT, orig: inet.HostPort{Addr: to.Addr, Port: newPort}, to: origDst}

	t.Translations++
	pkt.Dst = to.Addr
	setTransportPorts(pkt, sp, newPort)
	fixTransportChecksum(pkt)
}

// applySNAT rewrites the source and records both directions.
func (t *Table) applySNAT(pkt *ipv4.Packet, to inet.HostPort) {
	sp, dp, _ := transportPorts(pkt)
	origSrc := inet.HostPort{Addr: pkt.Src, Port: sp}
	newPort := to.Port
	if newPort == 0 {
		newPort = sp
	}
	fwd := flowKey{proto: pkt.Proto, src: pkt.Src, dst: pkt.Dst, srcPort: sp, dstPort: dp}
	t.conntrack[fwd] = natEntry{kind: TargetSNAT, orig: origSrc, to: inet.HostPort{Addr: to.Addr, Port: newPort}}
	rev := flowKey{proto: pkt.Proto, src: pkt.Dst, dst: to.Addr, srcPort: dp, dstPort: newPort}
	t.conntrack[rev] = natEntry{kind: TargetDNAT, orig: inet.HostPort{Addr: to.Addr, Port: newPort}, to: origSrc}

	t.Translations++
	pkt.Src = to.Addr
	setTransportPorts(pkt, newPort, dp)
	fixTransportChecksum(pkt)
}

// ConntrackLen reports how many conntrack entries exist (each NAT'd flow
// contributes a forward and a reverse entry).
func (t *Table) ConntrackLen() int { return len(t.conntrack) }

// FlushConntrack drops all conntrack state, modelling entry expiry: an
// established flow's packets stop matching conntrack and are re-evaluated
// against the NAT rules (re-translating originals, leaving replies
// untranslated — exactly the mid-flow breakage real conntrack expiry
// causes).
func (t *Table) FlushConntrack() {
	t.conntrack = make(map[flowKey]natEntry)
}

// CheckConntrack verifies the table's structural invariant: every conntrack
// entry has a paired reverse entry of the opposite kind whose translation
// undoes this one (DNAT forward ⇄ SNAT reply and vice versa). applyDNAT and
// applySNAT always install both directions; an unpaired entry means a flow
// whose replies cannot be un-translated. Registered on the kernel via
// RegisterInvariants.
func (t *Table) CheckConntrack() error {
	// Any violation aborts the run; only the first-error text varies with
	// iteration order, never simulation state. Sorting the 5-field flow keys
	// at every event boundary would cost more than the check itself.
	//simvet:allow maporder invariant check is order-independent: any hit aborts, and sorting 5-field flow keys per event boundary costs more than the check
	for key, e := range t.conntrack {
		var rev flowKey
		switch e.kind {
		case TargetDNAT:
			// Packets are rewritten toward e.to; replies come back from it.
			rev = flowKey{proto: key.proto, src: e.to.Addr, srcPort: e.to.Port,
				dst: key.src, dstPort: key.srcPort}
		case TargetSNAT:
			// Replies target the translated source e.to.
			rev = flowKey{proto: key.proto, src: key.dst, srcPort: key.dstPort,
				dst: e.to.Addr, dstPort: e.to.Port}
		default:
			return fmt.Errorf("conntrack entry %+v has non-NAT kind %v", key, e.kind)
		}
		re, ok := t.conntrack[rev]
		if !ok {
			return fmt.Errorf("conntrack entry %+v (%v) lacks reverse entry %+v", key, e.kind, rev)
		}
		if re.kind == e.kind {
			return fmt.Errorf("conntrack pair %+v / %+v share kind %v", key, rev, e.kind)
		}
		if re.to != e.orig {
			return fmt.Errorf("conntrack reverse of %+v translates to %v, want original %v", key, re.to, e.orig)
		}
	}
	return nil
}

// RegisterInvariants attaches the table's structural checks to a kernel's
// invariant registry (see sim.Kernel.RegisterInvariant).
func (t *Table) RegisterInvariants(k *sim.Kernel) {
	k.RegisterInvariant("netfilter/conntrack-pairing", t.CheckConntrack)
}

// transportPorts extracts TCP/UDP ports.
func transportPorts(pkt *ipv4.Packet) (src, dst inet.Port, ok bool) {
	if (pkt.Proto != ipv4.ProtoTCP && pkt.Proto != ipv4.ProtoUDP) || len(pkt.Payload) < 4 {
		return 0, 0, false
	}
	return inet.Port(binary.BigEndian.Uint16(pkt.Payload[0:2])),
		inet.Port(binary.BigEndian.Uint16(pkt.Payload[2:4])), true
}

func setTransportPorts(pkt *ipv4.Packet, src, dst inet.Port) {
	if len(pkt.Payload) < 4 {
		return
	}
	binary.BigEndian.PutUint16(pkt.Payload[0:2], uint16(src))
	binary.BigEndian.PutUint16(pkt.Payload[2:4], uint16(dst))
}

// fixTransportChecksum recomputes the TCP/UDP checksum after address or port
// rewrites (the pseudo-header covers IP addresses).
func fixTransportChecksum(pkt *ipv4.Packet) {
	var csOff int
	switch pkt.Proto {
	case ipv4.ProtoTCP:
		csOff = 16
	case ipv4.ProtoUDP:
		csOff = 6
	default:
		return
	}
	if len(pkt.Payload) < csOff+2 {
		return
	}
	pkt.Payload[csOff] = 0
	pkt.Payload[csOff+1] = 0
	sum := inet.PseudoHeaderSum(pkt.Src, pkt.Dst, pkt.Proto, uint16(len(pkt.Payload)))
	sum = inet.SumBytes(sum, pkt.Payload)
	cs := inet.FinishChecksum(sum)
	if pkt.Proto == ipv4.ProtoUDP && cs == 0 {
		cs = 0xffff
	}
	binary.BigEndian.PutUint16(pkt.Payload[csOff:csOff+2], cs)
}

// ParseIptables parses a restricted iptables command line — the subset the
// paper uses — and appends the resulting rule. Supported flags:
//
//	-t nat|filter  -A CHAIN  -p tcp|udp|icmp  -s CIDR|IP  -d CIDR|IP
//	--sport N  --dport N  -i IFACE  -o IFACE
//	-j ACCEPT|DROP|DNAT|SNAT  --to IP[:PORT] | --to-destination | --to-source
func (t *Table) ParseIptables(cmd string) (*Rule, error) {
	fields := strings.Fields(strings.TrimPrefix(strings.TrimSpace(cmd), "iptables"))
	var rule Rule
	rule.Target = TargetAccept
	chain := ipv4.HookPoint(-1)
	i := 0
	next := func(flag string) (string, error) {
		i++
		if i >= len(fields) {
			return "", fmt.Errorf("netfilter: %s needs an argument", flag)
		}
		return fields[i], nil
	}
	for ; i < len(fields); i++ {
		f := fields[i]
		switch f {
		case "-t":
			if _, err := next(f); err != nil {
				return nil, err
			} // table name accepted and ignored
		case "-A":
			v, err := next(f)
			if err != nil {
				return nil, err
			}
			switch v {
			case "PREROUTING":
				chain = ipv4.HookPrerouting
			case "INPUT":
				chain = ipv4.HookInput
			case "FORWARD":
				chain = ipv4.HookForward
			case "OUTPUT":
				chain = ipv4.HookOutput
			case "POSTROUTING":
				chain = ipv4.HookPostrouting
			default:
				return nil, fmt.Errorf("netfilter: unknown chain %q", v)
			}
		case "-p":
			v, err := next(f)
			if err != nil {
				return nil, err
			}
			switch v {
			case "tcp":
				rule.Match.Proto = ipv4.ProtoTCP
			case "udp":
				rule.Match.Proto = ipv4.ProtoUDP
			case "icmp":
				rule.Match.Proto = ipv4.ProtoICMP
			default:
				return nil, fmt.Errorf("netfilter: unknown proto %q", v)
			}
		case "-s", "-d":
			v, err := next(f)
			if err != nil {
				return nil, err
			}
			if !strings.Contains(v, "/") {
				v += "/32"
			}
			p, err := inet.ParsePrefix(v)
			if err != nil {
				return nil, err
			}
			if f == "-s" {
				rule.Match.Src = &p
			} else {
				rule.Match.Dst = &p
			}
		case "--sport", "--dport":
			v, err := next(f)
			if err != nil {
				return nil, err
			}
			var port int
			if _, err := fmt.Sscanf(v, "%d", &port); err != nil || port < 1 || port > 65535 {
				return nil, fmt.Errorf("netfilter: bad port %q", v)
			}
			if f == "--sport" {
				rule.Match.SrcPort = inet.Port(port)
			} else {
				rule.Match.DstPort = inet.Port(port)
			}
		case "-i":
			v, err := next(f)
			if err != nil {
				return nil, err
			}
			rule.Match.InIface = v
		case "-o":
			v, err := next(f)
			if err != nil {
				return nil, err
			}
			rule.Match.OutIface = v
		case "-j":
			v, err := next(f)
			if err != nil {
				return nil, err
			}
			switch v {
			case "ACCEPT":
				rule.Target = TargetAccept
			case "DROP":
				rule.Target = TargetDrop
			case "DNAT":
				rule.Target = TargetDNAT
			case "SNAT":
				rule.Target = TargetSNAT
			default:
				return nil, fmt.Errorf("netfilter: unknown target %q", v)
			}
		case "--to", "--to-destination", "--to-source":
			v, err := next(f)
			if err != nil {
				return nil, err
			}
			if strings.Contains(v, ":") {
				hp, err := inet.ParseHostPort(v)
				if err != nil {
					return nil, err
				}
				rule.NATTo = hp
			} else {
				a, err := inet.ParseAddr(v)
				if err != nil {
					return nil, err
				}
				rule.NATTo = inet.HostPort{Addr: a}
			}
		default:
			return nil, fmt.Errorf("netfilter: unsupported flag %q", f)
		}
	}
	if chain < 0 {
		return nil, fmt.Errorf("netfilter: no -A CHAIN given")
	}
	if (rule.Target == TargetDNAT || rule.Target == TargetSNAT) && rule.NATTo.Addr.IsUnspecified() {
		return nil, fmt.Errorf("netfilter: %v requires --to", rule.Target)
	}
	return t.Append(chain, rule), nil
}
