// Package netfilter reproduces the slice of Linux Netfilter/iptables the
// paper's attack uses: chain-based packet filtering and NAT with connection
// tracking. The attack's key line (paper §4.1) is
//
//	iptables -t nat -A PREROUTING -p tcp -d Target-IP --dport 80 \
//	         -j DNAT --to Gateway-IP:10101
//
// which redirects the victim's web traffic into the local netsed proxy.
// ParseIptables accepts exactly that syntax so the examples can run the
// paper's commands verbatim.
package netfilter

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/inet"
	"repro/internal/ipv4"
)

// Target is a rule's action.
type Target int

// Targets.
const (
	TargetAccept Target = iota
	TargetDrop
	TargetDNAT
	TargetSNAT
)

// String names the target.
func (t Target) String() string {
	switch t {
	case TargetAccept:
		return "ACCEPT"
	case TargetDrop:
		return "DROP"
	case TargetDNAT:
		return "DNAT"
	case TargetSNAT:
		return "SNAT"
	}
	return "?"
}

// Match is a rule's match specification; zero-valued fields match anything.
type Match struct {
	Proto    uint8 // 0 = any
	Src, Dst *inet.Prefix
	SrcPort  inet.Port
	DstPort  inet.Port
	InIface  string
	OutIface string
}

// Rule is one chain entry.
type Rule struct {
	Match  Match
	Target Target
	// NATTo is the DNAT/SNAT translation target. Port 0 keeps the original
	// port.
	NATTo inet.HostPort
	// Counters.
	Packets uint64
	Bytes   uint64
}

// matches evaluates the rule against a packet.
func (r *Rule) matches(pkt *ipv4.Packet, in, out string) bool {
	m := &r.Match
	if m.Proto != 0 && pkt.Proto != m.Proto {
		return false
	}
	if m.Src != nil && !m.Src.Contains(pkt.Src) {
		return false
	}
	if m.Dst != nil && !m.Dst.Contains(pkt.Dst) {
		return false
	}
	if m.InIface != "" && m.InIface != in {
		return false
	}
	if m.OutIface != "" && m.OutIface != out {
		return false
	}
	if m.SrcPort != 0 || m.DstPort != 0 {
		sp, dp, ok := transportPorts(pkt)
		if !ok {
			return false
		}
		if m.SrcPort != 0 && sp != m.SrcPort {
			return false
		}
		if m.DstPort != 0 && dp != m.DstPort {
			return false
		}
	}
	return true
}

// flowKey identifies a transport flow for conntrack.
type flowKey struct {
	proto            uint8
	src, dst         inet.Addr
	srcPort, dstPort inet.Port
}

// natEntry records a translation applied to a flow.
type natEntry struct {
	// kind distinguishes DNAT from SNAT for reply handling.
	kind Target
	// orig is the pre-translation address (dst for DNAT, src for SNAT).
	orig inet.HostPort
	// to is the post-translation address.
	to inet.HostPort
}

// Table is a host's firewall: five chains plus NAT conntrack. Install it
// with stack.AddHook.
type Table struct {
	chains    map[ipv4.HookPoint][]*Rule
	conntrack map[flowKey]natEntry
	// translated marks packets conntrack already handled during the
	// current traversal: NAT rules only ever see a flow's first packet
	// (Linux nat-table semantics).
	translated map[*ipv4.Packet]struct{}

	// Counters.
	Translations uint64
	Drops        uint64
}

// New returns an empty table (policy ACCEPT on every chain).
func New() *Table {
	return &Table{
		chains:     make(map[ipv4.HookPoint][]*Rule),
		conntrack:  make(map[flowKey]natEntry),
		translated: make(map[*ipv4.Packet]struct{}),
	}
}

// Append adds a rule to a chain.
func (t *Table) Append(chain ipv4.HookPoint, r Rule) *Rule {
	rp := &r
	t.chains[chain] = append(t.chains[chain], rp)
	return rp
}

// Rules lists a chain's rules.
func (t *Table) Rules(chain ipv4.HookPoint) []*Rule { return t.chains[chain] }

// Filter implements ipv4.Hook.
func (t *Table) Filter(point ipv4.HookPoint, pkt *ipv4.Packet, in, out string) ipv4.Verdict {
	// Conntrack first (established translations bypass NAT rule
	// evaluation, and reply packets get the reverse translation).
	switch point {
	case ipv4.HookPrerouting, ipv4.HookOutput:
		delete(t.translated, pkt) // fresh traversal for this pointer
		if t.applyConntrack(pkt) {
			t.translated[pkt] = struct{}{}
		}
	}
	_, tracked := t.translated[pkt]
	verdict := ipv4.VerdictAccept
	for _, r := range t.chains[point] {
		if !r.matches(pkt, in, out) {
			continue
		}
		if tracked && (r.Target == TargetDNAT || r.Target == TargetSNAT) {
			continue // flow already translated; nat rules see first packet only
		}
		r.Packets++
		r.Bytes += uint64(pkt.Len())
		done := true
		switch r.Target {
		case TargetAccept:
		case TargetDrop:
			t.Drops++
			verdict = ipv4.VerdictDrop
		case TargetDNAT:
			t.applyDNAT(pkt, r.NATTo)
			t.translated[pkt] = struct{}{}
		case TargetSNAT:
			t.applySNAT(pkt, r.NATTo)
			t.translated[pkt] = struct{}{}
		}
		if done {
			break
		}
	}
	// Terminal hooks (and drops) end the traversal: release the marker.
	if verdict == ipv4.VerdictDrop || point == ipv4.HookInput || point == ipv4.HookPostrouting {
		delete(t.translated, pkt)
	}
	return verdict
}

// applyConntrack translates packets of flows with existing NAT state, both
// continuing originals and replies. It reports whether a translation was
// applied.
func (t *Table) applyConntrack(pkt *ipv4.Packet) bool {
	sp, dp, ok := transportPorts(pkt)
	if !ok {
		return false
	}
	key := flowKey{proto: pkt.Proto, src: pkt.Src, dst: pkt.Dst, srcPort: sp, dstPort: dp}
	e, ok := t.conntrack[key]
	if !ok {
		return false
	}
	t.Translations++
	switch e.kind {
	case TargetDNAT:
		// Forward direction of a DNATed flow, or reply of an SNATed one.
		pkt.Dst = e.to.Addr
		if e.to.Port != 0 {
			setTransportPorts(pkt, sp, e.to.Port)
		}
	case TargetSNAT:
		pkt.Src = e.to.Addr
		if e.to.Port != 0 {
			setTransportPorts(pkt, e.to.Port, dp)
		}
	}
	fixTransportChecksum(pkt)
	return true
}

// applyDNAT rewrites the destination and records both directions.
func (t *Table) applyDNAT(pkt *ipv4.Packet, to inet.HostPort) {
	sp, dp, _ := transportPorts(pkt)
	origDst := inet.HostPort{Addr: pkt.Dst, Port: dp}
	newPort := to.Port
	if newPort == 0 {
		newPort = dp
	}
	// Forward entry: future packets of this flow translate without rules.
	fwd := flowKey{proto: pkt.Proto, src: pkt.Src, dst: pkt.Dst, srcPort: sp, dstPort: dp}
	t.conntrack[fwd] = natEntry{kind: TargetDNAT, orig: origDst, to: inet.HostPort{Addr: to.Addr, Port: newPort}}
	// Reply entry: packets from the new destination back to the source get
	// their source rewritten to the original destination (un-DNAT).
	rev := flowKey{proto: pkt.Proto, src: to.Addr, dst: pkt.Src, srcPort: newPort, dstPort: sp}
	t.conntrack[rev] = natEntry{kind: TargetSNAT, orig: inet.HostPort{Addr: to.Addr, Port: newPort}, to: origDst}

	t.Translations++
	pkt.Dst = to.Addr
	setTransportPorts(pkt, sp, newPort)
	fixTransportChecksum(pkt)
}

// applySNAT rewrites the source and records both directions.
func (t *Table) applySNAT(pkt *ipv4.Packet, to inet.HostPort) {
	sp, dp, _ := transportPorts(pkt)
	origSrc := inet.HostPort{Addr: pkt.Src, Port: sp}
	newPort := to.Port
	if newPort == 0 {
		newPort = sp
	}
	fwd := flowKey{proto: pkt.Proto, src: pkt.Src, dst: pkt.Dst, srcPort: sp, dstPort: dp}
	t.conntrack[fwd] = natEntry{kind: TargetSNAT, orig: origSrc, to: inet.HostPort{Addr: to.Addr, Port: newPort}}
	rev := flowKey{proto: pkt.Proto, src: pkt.Dst, dst: to.Addr, srcPort: dp, dstPort: newPort}
	t.conntrack[rev] = natEntry{kind: TargetDNAT, orig: inet.HostPort{Addr: to.Addr, Port: newPort}, to: origSrc}

	t.Translations++
	pkt.Src = to.Addr
	setTransportPorts(pkt, newPort, dp)
	fixTransportChecksum(pkt)
}

// transportPorts extracts TCP/UDP ports.
func transportPorts(pkt *ipv4.Packet) (src, dst inet.Port, ok bool) {
	if (pkt.Proto != ipv4.ProtoTCP && pkt.Proto != ipv4.ProtoUDP) || len(pkt.Payload) < 4 {
		return 0, 0, false
	}
	return inet.Port(binary.BigEndian.Uint16(pkt.Payload[0:2])),
		inet.Port(binary.BigEndian.Uint16(pkt.Payload[2:4])), true
}

func setTransportPorts(pkt *ipv4.Packet, src, dst inet.Port) {
	if len(pkt.Payload) < 4 {
		return
	}
	binary.BigEndian.PutUint16(pkt.Payload[0:2], uint16(src))
	binary.BigEndian.PutUint16(pkt.Payload[2:4], uint16(dst))
}

// fixTransportChecksum recomputes the TCP/UDP checksum after address or port
// rewrites (the pseudo-header covers IP addresses).
func fixTransportChecksum(pkt *ipv4.Packet) {
	var csOff int
	switch pkt.Proto {
	case ipv4.ProtoTCP:
		csOff = 16
	case ipv4.ProtoUDP:
		csOff = 6
	default:
		return
	}
	if len(pkt.Payload) < csOff+2 {
		return
	}
	pkt.Payload[csOff] = 0
	pkt.Payload[csOff+1] = 0
	sum := inet.PseudoHeaderSum(pkt.Src, pkt.Dst, pkt.Proto, uint16(len(pkt.Payload)))
	sum = inet.SumBytes(sum, pkt.Payload)
	cs := inet.FinishChecksum(sum)
	if pkt.Proto == ipv4.ProtoUDP && cs == 0 {
		cs = 0xffff
	}
	binary.BigEndian.PutUint16(pkt.Payload[csOff:csOff+2], cs)
}

// ParseIptables parses a restricted iptables command line — the subset the
// paper uses — and appends the resulting rule. Supported flags:
//
//	-t nat|filter  -A CHAIN  -p tcp|udp|icmp  -s CIDR|IP  -d CIDR|IP
//	--sport N  --dport N  -i IFACE  -o IFACE
//	-j ACCEPT|DROP|DNAT|SNAT  --to IP[:PORT] | --to-destination | --to-source
func (t *Table) ParseIptables(cmd string) (*Rule, error) {
	fields := strings.Fields(strings.TrimPrefix(strings.TrimSpace(cmd), "iptables"))
	var rule Rule
	rule.Target = TargetAccept
	chain := ipv4.HookPoint(-1)
	i := 0
	next := func(flag string) (string, error) {
		i++
		if i >= len(fields) {
			return "", fmt.Errorf("netfilter: %s needs an argument", flag)
		}
		return fields[i], nil
	}
	for ; i < len(fields); i++ {
		f := fields[i]
		switch f {
		case "-t":
			if _, err := next(f); err != nil {
				return nil, err
			} // table name accepted and ignored
		case "-A":
			v, err := next(f)
			if err != nil {
				return nil, err
			}
			switch v {
			case "PREROUTING":
				chain = ipv4.HookPrerouting
			case "INPUT":
				chain = ipv4.HookInput
			case "FORWARD":
				chain = ipv4.HookForward
			case "OUTPUT":
				chain = ipv4.HookOutput
			case "POSTROUTING":
				chain = ipv4.HookPostrouting
			default:
				return nil, fmt.Errorf("netfilter: unknown chain %q", v)
			}
		case "-p":
			v, err := next(f)
			if err != nil {
				return nil, err
			}
			switch v {
			case "tcp":
				rule.Match.Proto = ipv4.ProtoTCP
			case "udp":
				rule.Match.Proto = ipv4.ProtoUDP
			case "icmp":
				rule.Match.Proto = ipv4.ProtoICMP
			default:
				return nil, fmt.Errorf("netfilter: unknown proto %q", v)
			}
		case "-s", "-d":
			v, err := next(f)
			if err != nil {
				return nil, err
			}
			if !strings.Contains(v, "/") {
				v += "/32"
			}
			p, err := inet.ParsePrefix(v)
			if err != nil {
				return nil, err
			}
			if f == "-s" {
				rule.Match.Src = &p
			} else {
				rule.Match.Dst = &p
			}
		case "--sport", "--dport":
			v, err := next(f)
			if err != nil {
				return nil, err
			}
			var port int
			if _, err := fmt.Sscanf(v, "%d", &port); err != nil || port < 1 || port > 65535 {
				return nil, fmt.Errorf("netfilter: bad port %q", v)
			}
			if f == "--sport" {
				rule.Match.SrcPort = inet.Port(port)
			} else {
				rule.Match.DstPort = inet.Port(port)
			}
		case "-i":
			v, err := next(f)
			if err != nil {
				return nil, err
			}
			rule.Match.InIface = v
		case "-o":
			v, err := next(f)
			if err != nil {
				return nil, err
			}
			rule.Match.OutIface = v
		case "-j":
			v, err := next(f)
			if err != nil {
				return nil, err
			}
			switch v {
			case "ACCEPT":
				rule.Target = TargetAccept
			case "DROP":
				rule.Target = TargetDrop
			case "DNAT":
				rule.Target = TargetDNAT
			case "SNAT":
				rule.Target = TargetSNAT
			default:
				return nil, fmt.Errorf("netfilter: unknown target %q", v)
			}
		case "--to", "--to-destination", "--to-source":
			v, err := next(f)
			if err != nil {
				return nil, err
			}
			if strings.Contains(v, ":") {
				hp, err := inet.ParseHostPort(v)
				if err != nil {
					return nil, err
				}
				rule.NATTo = hp
			} else {
				a, err := inet.ParseAddr(v)
				if err != nil {
					return nil, err
				}
				rule.NATTo = inet.HostPort{Addr: a}
			}
		default:
			return nil, fmt.Errorf("netfilter: unsupported flag %q", f)
		}
	}
	if chain < 0 {
		return nil, fmt.Errorf("netfilter: no -A CHAIN given")
	}
	if (rule.Target == TargetDNAT || rule.Target == TargetSNAT) && rule.NATTo.Addr.IsUnspecified() {
		return nil, fmt.Errorf("netfilter: %v requires --to", rule.Target)
	}
	return t.Append(chain, rule), nil
}
