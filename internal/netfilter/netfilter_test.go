package netfilter

import (
	"testing"
	"testing/quick"

	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/ipv4"
	"repro/internal/sim"
	"repro/internal/tcp"
)

func TestParseIptablesPaperCommand(t *testing.T) {
	// The exact command from the paper's §4.1.
	tbl := New()
	r, err := tbl.ParseIptables(
		"iptables -t nat -A PREROUTING -p tcp -d 10.0.0.80 --dport 80 -j DNAT --to 10.0.0.254:10101")
	if err != nil {
		t.Fatal(err)
	}
	if r.Target != TargetDNAT {
		t.Fatalf("target %v", r.Target)
	}
	if r.Match.Proto != ipv4.ProtoTCP || r.Match.DstPort != 80 {
		t.Fatalf("match %+v", r.Match)
	}
	if !r.Match.Dst.Contains(inet.MustParseAddr("10.0.0.80")) || r.Match.Dst.Bits != 32 {
		t.Fatalf("dst %v", r.Match.Dst)
	}
	if r.NATTo != inet.MustParseHostPort("10.0.0.254:10101") {
		t.Fatalf("to %v", r.NATTo)
	}
	if len(tbl.Rules(ipv4.HookPrerouting)) != 1 {
		t.Fatal("rule not appended to PREROUTING")
	}
}

func TestParseIptablesVariants(t *testing.T) {
	tbl := New()
	ok := []string{
		"-A INPUT -j DROP",
		"-A FORWARD -p udp --sport 53 -j ACCEPT",
		"-A OUTPUT -s 10.0.0.0/8 -j ACCEPT",
		"-A POSTROUTING -o eth1 -j SNAT --to-source 1.2.3.4",
		"iptables -A PREROUTING -i wlan0 -p icmp -j DROP",
	}
	for _, cmd := range ok {
		if _, err := tbl.ParseIptables(cmd); err != nil {
			t.Errorf("ParseIptables(%q): %v", cmd, err)
		}
	}
	bad := []string{
		"",
		"-A NOWHERE -j DROP",
		"-A INPUT -j TEAPOT",
		"-A INPUT -p carrier-pigeon -j DROP",
		"-A INPUT --dport notaport -j DROP",
		"-A PREROUTING -j DNAT", // missing --to
		"-A INPUT -x wat",
		"-A INPUT -d",
	}
	for _, cmd := range bad {
		if _, err := tbl.ParseIptables(cmd); err == nil {
			t.Errorf("ParseIptables(%q) accepted", cmd)
		}
	}
}

func TestMatchFields(t *testing.T) {
	dst := inet.MustParsePrefix("10.0.0.80/32")
	r := Rule{Match: Match{Proto: ipv4.ProtoTCP, Dst: &dst, DstPort: 80}}
	mk := func(proto uint8, dstIP string, dport uint16) *ipv4.Packet {
		payload := make([]byte, 20)
		payload[2] = byte(dport >> 8)
		payload[3] = byte(dport)
		return &ipv4.Packet{Proto: proto, Src: inet.MustParseAddr("10.0.0.3"),
			Dst: inet.MustParseAddr(dstIP), Payload: payload}
	}
	if !r.matches(mk(ipv4.ProtoTCP, "10.0.0.80", 80), "", "") {
		t.Error("exact match failed")
	}
	if r.matches(mk(ipv4.ProtoUDP, "10.0.0.80", 80), "", "") {
		t.Error("wrong proto matched")
	}
	if r.matches(mk(ipv4.ProtoTCP, "10.0.0.81", 80), "", "") {
		t.Error("wrong dst matched")
	}
	if r.matches(mk(ipv4.ProtoTCP, "10.0.0.80", 443), "", "") {
		t.Error("wrong port matched")
	}
}

func TestIfaceMatch(t *testing.T) {
	r := Rule{Match: Match{InIface: "wlan0"}}
	pkt := &ipv4.Packet{Proto: ipv4.ProtoICMP}
	if !r.matches(pkt, "wlan0", "") {
		t.Error("iface match failed")
	}
	if r.matches(pkt, "eth1", "") {
		t.Error("wrong iface matched")
	}
}

// gatewayWorld: client —sw1— gateway(fw, forwarding) —sw2— {server, proxy host}.
// The gateway DNATs server:80 to proxy:10101.
type gatewayWorld struct {
	k               *sim.Kernel
	client          *tcp.Stack
	gatewayFW       *Table
	server          *tcp.Stack
	proxyOnGateway  *tcp.Stack
	clientIP, svrIP inet.Addr
	gwClientSide    inet.Addr
}

func newGatewayWorld(t *testing.T) *gatewayWorld {
	t.Helper()
	k := sim.NewKernel(1)
	var alloc ethernet.MACAllocator
	sw1 := ethernet.NewSwitch(k, &alloc, ethernet.SwitchConfig{})
	sw2 := ethernet.NewSwitch(k, &alloc, ethernet.SwitchConfig{})

	clientIP := inet.MustParseAddr("10.0.1.2")
	gwA := inet.MustParseAddr("10.0.1.1")
	gwB := inet.MustParseAddr("10.0.2.1")
	svrIP := inet.MustParseAddr("10.0.2.2")

	ipClient := ipv4.NewStack(k, "client")
	ipClient.AddIface("eth0", sw1.Attach(alloc.Next()), clientIP, inet.MustParsePrefix("10.0.1.0/24"))
	ipClient.AddDefaultRoute(gwA, "eth0")

	ipGW := ipv4.NewStack(k, "gateway")
	ipGW.Forwarding = true
	ipGW.AddIface("wlan0", sw1.Attach(alloc.Next()), gwA, inet.MustParsePrefix("10.0.1.0/24"))
	ipGW.AddIface("eth1", sw2.Attach(alloc.Next()), gwB, inet.MustParsePrefix("10.0.2.0/24"))
	fw := New()
	ipGW.AddHook(fw)

	ipSvr := ipv4.NewStack(k, "server")
	ipSvr.AddIface("eth0", sw2.Attach(alloc.Next()), svrIP, inet.MustParsePrefix("10.0.2.0/24"))
	ipSvr.AddDefaultRoute(gwB, "eth0")

	return &gatewayWorld{
		k:              k,
		client:         tcp.NewStack(ipClient),
		gatewayFW:      fw,
		server:         tcp.NewStack(ipSvr),
		proxyOnGateway: tcp.NewStack(ipGW),
		clientIP:       clientIP,
		svrIP:          svrIP,
		gwClientSide:   gwA,
	}
}

func TestDNATRedirectsToLocalProxy(t *testing.T) {
	// Reproduces the paper's redirect: client connects to server:80, the
	// gateway DNATs it to its own :10101 where a local listener answers.
	// The client must believe it is talking to the server.
	w := newGatewayWorld(t)
	cmd := "iptables -t nat -A PREROUTING -p tcp -d " + w.svrIP.String() +
		" --dport 80 -j DNAT --to " + w.gwClientSide.String() + ":10101"
	if _, err := w.gatewayFW.ParseIptables(cmd); err != nil {
		t.Fatal(err)
	}
	l, err := w.proxyOnGateway.Listen(10101)
	if err != nil {
		t.Fatal(err)
	}
	l.OnAccept = func(c *tcp.Conn) {
		c.OnData = func(b []byte) {
			_ = c.Write([]byte("proxied:" + string(b)))
			c.Close()
		}
	}
	// Real server also listens — it must NOT get the connection.
	sl, _ := w.server.Listen(80)
	serverGot := false
	sl.OnAccept = func(c *tcp.Conn) { serverGot = true }

	c, err := w.client.Dial(inet.HostPort{Addr: w.svrIP, Port: 80})
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	c.OnConnect = func() { _ = c.Write([]byte("GET")) }
	c.OnData = func(b []byte) { got = append(got, b...) }
	w.k.RunUntil(10 * sim.Second)

	if string(got) != "proxied:GET" {
		t.Fatalf("client got %q", got)
	}
	if serverGot {
		t.Fatal("real server received the DNATed connection")
	}
	if c.RemoteAddr().Addr != w.svrIP {
		t.Fatal("client's view of the server address changed (NAT must be transparent)")
	}
	if w.gatewayFW.Translations == 0 {
		t.Fatal("no conntrack translations recorded")
	}
}

func TestDNATOnlyMatchingPortRedirected(t *testing.T) {
	w := newGatewayWorld(t)
	_, _ = w.gatewayFW.ParseIptables(
		"iptables -t nat -A PREROUTING -p tcp -d " + w.svrIP.String() +
			" --dport 80 -j DNAT --to " + w.gwClientSide.String() + ":10101")
	// Traffic to port 443 must reach the real server untouched.
	sl, _ := w.server.Listen(443)
	var serverGot []byte
	sl.OnAccept = func(c *tcp.Conn) {
		c.OnData = func(b []byte) {
			serverGot = append(serverGot, b...)
			_ = c.Write([]byte("real"))
		}
	}
	c, _ := w.client.Dial(inet.HostPort{Addr: w.svrIP, Port: 443})
	var got []byte
	c.OnConnect = func() { _ = c.Write([]byte("tls-hello")) }
	c.OnData = func(b []byte) { got = append(got, b...) }
	w.k.RunUntil(10 * sim.Second)
	if string(serverGot) != "tls-hello" || string(got) != "real" {
		t.Fatalf("server got %q, client got %q", serverGot, got)
	}
}

func TestDropRuleBlocksForwarding(t *testing.T) {
	w := newGatewayWorld(t)
	_, _ = w.gatewayFW.ParseIptables("-A FORWARD -p tcp -j DROP")
	sl, _ := w.server.Listen(80)
	sl.OnAccept = func(c *tcp.Conn) {}
	c, _ := w.client.Dial(inet.HostPort{Addr: w.svrIP, Port: 80})
	connected := false
	c.OnConnect = func() { connected = true }
	w.k.RunUntil(30 * sim.Second)
	if connected {
		t.Fatal("connection crossed a DROP FORWARD rule")
	}
	if w.gatewayFW.Drops == 0 {
		t.Fatal("no drops counted")
	}
}

func TestSNATMasquerades(t *testing.T) {
	w := newGatewayWorld(t)
	_, _ = w.gatewayFW.ParseIptables(
		"-A POSTROUTING -p tcp -o eth1 -j SNAT --to-source 10.0.2.1")
	sl, _ := w.server.Listen(80)
	var seenFrom inet.Addr
	sl.OnAccept = func(c *tcp.Conn) {
		seenFrom = c.RemoteAddr().Addr
		c.OnData = func(b []byte) { _ = c.Write([]byte("hi")) }
	}
	c, _ := w.client.Dial(inet.HostPort{Addr: w.svrIP, Port: 80})
	var got []byte
	c.OnConnect = func() { _ = c.Write([]byte("x")) }
	c.OnData = func(b []byte) { got = append(got, b...) }
	w.k.RunUntil(10 * sim.Second)
	if seenFrom != inet.MustParseAddr("10.0.2.1") {
		t.Fatalf("server saw source %v, want the gateway's (SNAT)", seenFrom)
	}
	if string(got) != "hi" {
		t.Fatalf("reply did not reach client through reverse NAT: %q", got)
	}
}

func TestRuleCountersAdvance(t *testing.T) {
	w := newGatewayWorld(t)
	r, _ := w.gatewayFW.ParseIptables("-A FORWARD -p tcp -j ACCEPT")
	sl, _ := w.server.Listen(80)
	sl.OnAccept = func(c *tcp.Conn) {}
	c, _ := w.client.Dial(inet.HostPort{Addr: w.svrIP, Port: 80})
	_ = c
	w.k.RunUntil(5 * sim.Second)
	if r.Packets == 0 || r.Bytes == 0 {
		t.Fatalf("counters pkt=%d bytes=%d", r.Packets, r.Bytes)
	}
}

func TestTargetString(t *testing.T) {
	for tgt, want := range map[Target]string{
		TargetAccept: "ACCEPT", TargetDrop: "DROP", TargetDNAT: "DNAT", TargetSNAT: "SNAT",
	} {
		if tgt.String() != want {
			t.Errorf("%d = %q", tgt, tgt.String())
		}
	}
}

// ParseIptables must never panic on arbitrary command lines.
func TestQuickParseIptablesNoPanic(t *testing.T) {
	tbl := New()
	f := func(s string) bool {
		_, _ = tbl.ParseIptables(s)
		_, _ = tbl.ParseIptables("-A INPUT " + s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
