// Package faults is the deterministic fault-injection subsystem: declarative
// schedules of timed faults (burst loss, AP crashes, deauth storms, link
// flaps, frame corruption, host partitions) executed by the sim kernel, and
// the measurement hooks that let tests prove the stack self-heals afterwards.
//
// A schedule is a compact string — "deauth@2s+6s(interval=100ms);apcrash@20s+3s"
// — parsed once and replayed as kernel events, so a chaos run is exactly as
// reproducible as a clean one: the same seed and the same schedule give the
// same trace digest, and internal/check asserts it.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// Kind names one class of injectable fault.
type Kind string

// The fault kinds, by layer.
const (
	// KindBurst installs a Gilbert–Elliott burst-loss model on the shared
	// medium (phy). Params: pgb, pbg, loss, goodloss.
	KindBurst Kind = "burst"
	// KindAPCrash takes the real AP down — beacons stop, station state is
	// lost (a reboot forgets associations) — and restarts it at the end of
	// the window (dot11).
	KindAPCrash Kind = "apcrash"
	// KindQuiet suppresses the real AP's beacons without dropping station
	// state — a stalled beacon generator. Probe responses still work, so
	// clients recover by rescanning (dot11).
	KindQuiet Kind = "quiet"
	// KindLinkFlap takes the victim's radio off the air — hardware blink —
	// and restores it (phy/dot11).
	KindLinkFlap Kind = "linkflap"
	// KindDeauth runs an attack.Deauther flood against the victim, spoofed
	// from the real BSSID. Params: interval.
	KindDeauth Kind = "deauth"
	// KindJam runs a phy.Jammer on the real AP's channel from the attack
	// position — beacon suppression the way an attacker actually does it.
	// Params: bytes.
	KindJam Kind = "jam"
	// KindCorrupt flips one byte in a fraction of frames crossing the AP's
	// wired uplink (ethernet). Params: p.
	KindCorrupt Kind = "corrupt"
	// KindDup delivers a fraction of uplink frames twice (ethernet).
	// Params: p.
	KindDup Kind = "dup"
	// KindPartition isolates one host's IP stack — everything in or out is
	// dropped (ipv4). Params: host.
	KindPartition Kind = "partition"
)

// kinds is the closed set of valid kinds.
var kinds = map[Kind]bool{
	KindBurst: true, KindAPCrash: true, KindQuiet: true, KindLinkFlap: true,
	KindDeauth: true, KindJam: true, KindCorrupt: true, KindDup: true,
	KindPartition: true,
}

// Injection is one scheduled fault: apply Kind at At, revert it Duration
// later, and repeat Count times Period apart.
type Injection struct {
	Kind     Kind
	At       sim.Time
	Duration sim.Time
	// Count is the number of occurrences (>= 1); Period separates their
	// start times when Count > 1.
	Count  int
	Period sim.Time
	// Params are the kind-specific knobs, raw as parsed. Typed accessors
	// (Float, Dur, Str) apply defaults.
	Params map[string]string
}

// DefaultDuration applies when an entry omits "+dur".
const DefaultDuration = sim.Second

// Float reads a float param with a default.
func (i Injection) Float(key string, def float64) float64 {
	if v, ok := i.Params[key]; ok {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return f
		}
	}
	return def
}

// Dur reads a duration param with a default.
func (i Injection) Dur(key string, def sim.Time) sim.Time {
	if v, ok := i.Params[key]; ok {
		if d, err := time.ParseDuration(v); err == nil && d >= 0 {
			return sim.Time(d)
		}
	}
	return def
}

// Str reads a string param with a default.
func (i Injection) Str(key, def string) string {
	if v, ok := i.Params[key]; ok {
		return v
	}
	return def
}

// End reports when the last occurrence of this injection clears.
func (i Injection) End() sim.Time {
	last := i.At
	if i.Count > 1 {
		last += sim.Time(i.Count-1) * i.Period
	}
	return last + i.Duration
}

// String renders the injection in schedule grammar (params sorted, so the
// rendering is canonical and Parse∘String is the identity on semantics).
func (i Injection) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%s", i.Kind, i.At.Duration())
	b.WriteString("+" + i.Duration.Duration().String())
	if i.Count > 1 {
		fmt.Fprintf(&b, "*%d/%s", i.Count, i.Period.Duration())
	}
	if len(i.Params) > 0 {
		keys := make([]string, 0, len(i.Params))
		for k := range i.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for n, k := range keys {
			parts[n] = k + "=" + i.Params[k]
		}
		b.WriteString("(" + strings.Join(parts, ",") + ")")
	}
	return b.String()
}

// Schedule is an ordered list of injections.
type Schedule []Injection

// String renders the schedule in parseable grammar.
func (s Schedule) String() string {
	parts := make([]string, len(s))
	for i, inj := range s {
		parts[i] = inj.String()
	}
	return strings.Join(parts, ";")
}

// LastEnd reports when the final fault in the schedule clears — the moment
// from which the convergence clock runs. Zero for an empty schedule.
func (s Schedule) LastEnd() sim.Time {
	var last sim.Time
	for _, inj := range s {
		if e := inj.End(); e > last {
			last = e
		}
	}
	return last
}

// Parse reads the compact schedule grammar:
//
//	schedule := entry (';' entry)*
//	entry    := kind '@' start ['+' dur] ['*' count '/' period] ['(' k=v (',' k=v)* ')']
//
// where start/dur/period use Go duration syntax ("2s", "100ms"). A missing
// duration defaults to 1s; a missing repeat means one occurrence.
//
//	deauth@2s+6s(interval=100ms)
//	apcrash@20s+3s
//	linkflap@15s+500ms*3/5s
//	burst@12s+45s(pgb=0.02,pbg=0.25,loss=0.9)
func Parse(s string) (Schedule, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("faults: empty schedule")
	}
	var sched Schedule
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		inj, err := parseEntry(entry)
		if err != nil {
			return nil, err
		}
		sched = append(sched, inj)
	}
	if len(sched) == 0 {
		return nil, fmt.Errorf("faults: empty schedule")
	}
	return sched, nil
}

func parseEntry(entry string) (Injection, error) {
	inj := Injection{Duration: DefaultDuration, Count: 1}

	// Trailing (params).
	if open := strings.IndexByte(entry, '('); open >= 0 {
		if !strings.HasSuffix(entry, ")") {
			return inj, fmt.Errorf("faults: %q: unterminated params", entry)
		}
		raw := entry[open+1 : len(entry)-1]
		entry = entry[:open]
		inj.Params = make(map[string]string)
		for _, kv := range strings.Split(raw, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			if !ok || k == "" || v == "" {
				return inj, fmt.Errorf("faults: %q: bad param %q", entry, kv)
			}
			inj.Params[k] = v
		}
		if len(inj.Params) == 0 {
			inj.Params = nil
		}
	}

	kindStr, rest, ok := strings.Cut(entry, "@")
	if !ok {
		return inj, fmt.Errorf("faults: %q: missing '@start'", entry)
	}
	inj.Kind = Kind(strings.TrimSpace(kindStr))
	if !kinds[inj.Kind] {
		return inj, fmt.Errorf("faults: unknown fault kind %q", inj.Kind)
	}

	// rest := start ['+' dur] ['*' count '/' period]
	if star := strings.IndexByte(rest, '*'); star >= 0 {
		rep := rest[star+1:]
		rest = rest[:star]
		countStr, periodStr, ok := strings.Cut(rep, "/")
		if !ok {
			return inj, fmt.Errorf("faults: %q: repeat needs count/period", entry)
		}
		n, err := strconv.Atoi(strings.TrimSpace(countStr))
		if err != nil || n < 1 {
			return inj, fmt.Errorf("faults: %q: bad repeat count %q", entry, countStr)
		}
		period, err := parseDur(periodStr)
		if err != nil || period <= 0 {
			return inj, fmt.Errorf("faults: %q: bad repeat period %q", entry, periodStr)
		}
		inj.Count, inj.Period = n, period
	}
	startStr, durStr, hasDur := strings.Cut(rest, "+")
	start, err := parseDur(startStr)
	if err != nil || start < 0 {
		return inj, fmt.Errorf("faults: %q: bad start time %q", entry, startStr)
	}
	inj.At = start
	if hasDur {
		d, err := parseDur(durStr)
		if err != nil || d < 0 {
			return inj, fmt.Errorf("faults: %q: bad duration %q", entry, durStr)
		}
		inj.Duration = d
	}
	if inj.Count > 1 && inj.Period < inj.Duration {
		return inj, fmt.Errorf("faults: %q: repeat period %v shorter than duration %v (occurrences would overlap themselves)",
			entry, inj.Period, inj.Duration)
	}
	return inj, nil
}

func parseDur(s string) (sim.Time, error) {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil {
		return 0, err
	}
	return sim.Time(d), nil
}

// Builtins maps short chaos-schedule names (accepted anywhere a schedule
// string is, e.g. roguesim -faults) to their full schedules. These are the
// schedules the chaos scenarios and the determinism matrix in internal/check
// exercise.
func Builtins() map[string]string {
	return map[string]string{
		// A deauth flood during the association window: the client must
		// ride it out with backoff and end up associated somewhere.
		"deauth-storm": "deauth@2s+6s(interval=100ms)",
		// The real AP reboots mid-workload; associations are forgotten.
		"ap-restart": "apcrash@35s+3s",
		// A long Gilbert–Elliott bad spell across the download.
		"burst-loss": "burst@12s+45s(pgb=0.02,pbg=0.25,loss=0.9)",
		// The victim's own radio blinks three times.
		"link-flap": "linkflap@15s+500ms*3/5s",
		// The overlay's first-hop relay drops off the network mid-download:
		// the mesh must withdraw its routes and fail the tunnel over to the
		// alternate relay chain. Needs a world with relay hosts
		// (core.Config.Overlay).
		"relay-drop": "partition@35s+8s(host=relay1)",
		// Everything at once, non-overlapping: storm, reboot, burst, bitrot.
		"mixed": "deauth@2s+4s;apcrash@20s+2s;burst@30s+20s(loss=0.8);corrupt@55s+5s(p=0.02)",
	}
}

// BuiltinNames lists the builtin schedule names in sorted order.
func BuiltinNames() []string {
	m := Builtins()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Resolve accepts either a builtin schedule name or a raw schedule string.
func Resolve(s string) (Schedule, error) {
	if full, ok := Builtins()[strings.TrimSpace(s)]; ok {
		s = full
	}
	return Parse(s)
}
