package faults

import (
	"testing"

	"repro/internal/dot11"
	"repro/internal/ethernet"
	"repro/internal/ipv4"
	"repro/internal/phy"
	"repro/internal/sim"
)

func mustInstall(t *testing.T, e *Engine, schedule string) {
	t.Helper()
	sched, err := Parse(schedule)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Install(sched); err != nil {
		t.Fatal(err)
	}
}

func TestEngineBurstWindow(t *testing.T) {
	k := sim.NewKernel(1)
	m := phy.NewMedium(k, phy.Config{})
	e := New(k, Targets{Medium: m})
	mustInstall(t, e, "burst@1s+2s(pgb=1,pbg=0,loss=1)")

	a := m.AddRadio(phy.RadioConfig{Name: "a", Pos: phy.Position{X: 0}})
	b := m.AddRadio(phy.RadioConfig{Name: "b", Pos: phy.Position{X: 5}})
	delivered := 0
	b.SetReceiver(func(data []byte, info phy.RxInfo) { delivered++ })

	// One frame before, several inside, one after the window.
	k.At(500*sim.Millisecond, func() { a.Send(make([]byte, 100), phy.Rate11Mbps) })
	for i := 0; i < 5; i++ {
		at := sim.Time(1200+100*i) * sim.Millisecond
		k.At(at, func() { a.Send(make([]byte, 100), phy.Rate11Mbps) })
	}
	k.At(3500*sim.Millisecond, func() { a.Send(make([]byte, 100), phy.Rate11Mbps) })
	k.Run()

	// pgb=1, loss=1: every in-window frame dies; both out-of-window frames
	// live (5 m apart, SNR is comfortable).
	if delivered != 2 {
		t.Errorf("delivered %d frames, want 2 (burst window should eat 5)", delivered)
	}
	if m.BurstDrops != 5 {
		t.Errorf("BurstDrops = %d, want 5", m.BurstDrops)
	}
	if e.Applied != 1 || e.Reverted != 1 {
		t.Errorf("Applied/Reverted = %d/%d, want 1/1", e.Applied, e.Reverted)
	}
	if !e.Quiescent() {
		t.Error("engine not quiescent after schedule end")
	}
}

func TestEngineOverlappingWindowsCoalesce(t *testing.T) {
	k := sim.NewKernel(1)
	m := phy.NewMedium(k, phy.Config{})
	e := New(k, Targets{Medium: m})
	// Second window opens inside the first; the fault must stay applied
	// until the later close, with exactly one apply/revert pair.
	mustInstall(t, e, "burst@1s+4s;burst@2s+6s")

	var midway, after bool
	k.At(4500*sim.Millisecond, func() { midway = e.Quiescent() })
	k.At(9*sim.Second, func() { after = e.Quiescent() })
	k.Run()

	if e.Applied != 1 || e.Reverted != 1 {
		t.Errorf("Applied/Reverted = %d/%d, want 1/1 for overlapping windows", e.Applied, e.Reverted)
	}
	if midway {
		t.Error("engine quiescent at 4.5s while the second window is still open")
	}
	if !after {
		t.Error("engine not quiescent after both windows closed")
	}
}

func TestEngineAPCrashRestart(t *testing.T) {
	k := sim.NewKernel(1)
	m := phy.NewMedium(k, phy.Config{})
	radio := m.AddRadio(phy.RadioConfig{Name: "ap", Channel: 1})
	ap := dot11.NewAP(k, radio, dot11.APConfig{SSID: "CORP", BSSID: ethernet.MAC{2, 0, 0, 0, 0, 1}, Channel: 1})
	e := New(k, Targets{Medium: m, AP: ap})
	mustInstall(t, e, "apcrash@2s+3s")

	var atCrash, atRestart uint64
	var downMid, downAfter bool
	k.At(2500*sim.Millisecond, func() { atCrash = ap.Beacons; downMid = ap.Down() })
	k.At(4900*sim.Millisecond, func() { atRestart = ap.Beacons })
	k.At(8*sim.Second, func() { downAfter = ap.Down(); k.Stop() })
	k.Run()

	if !downMid {
		t.Error("AP not down inside the crash window")
	}
	if downAfter {
		t.Error("AP still down after the crash window")
	}
	if atRestart != atCrash {
		t.Errorf("AP beaconed while crashed: %d -> %d", atCrash, atRestart)
	}
	if ap.Beacons <= atRestart {
		t.Error("AP did not resume beaconing after restart")
	}
	if ap.Crashes != 1 {
		t.Errorf("Crashes = %d, want 1", ap.Crashes)
	}
}

func TestEngineWireCorruptionAndDup(t *testing.T) {
	k := sim.NewKernel(1)
	pa, pb := ethernet.NewCable(k, ethernet.MAC{2, 0, 0, 0, 0, 0xa}, ethernet.MAC{2, 0, 0, 0, 0, 0xb}, ethernet.PortConfig{})
	e := New(k, Targets{UplinkPorts: []*ethernet.Port{pa}})
	mustInstall(t, e, "corrupt@1s+2s(p=1);dup@4s+2s(p=1)")

	var rx [][]byte
	// Delivered payloads are transient views of pooled buffers, valid only
	// during the callback — copy before retaining (see DESIGN.md §9).
	pb.SetReceiver(func(f ethernet.Frame) { rx = append(rx, append([]byte(nil), f.Payload...)) })
	payload := []byte{1, 2, 3, 4}
	send := func() { pa.Send(pb.HWAddr(), ethernet.TypeIPv4, payload) }
	k.At(500*sim.Millisecond, send)  // clean
	k.At(1500*sim.Millisecond, send) // corrupted
	k.At(4500*sim.Millisecond, send) // duplicated
	k.At(7*sim.Second, send)         // clean again
	k.Run()

	if len(rx) != 5 {
		t.Fatalf("received %d frames, want 5 (one duplicated)", len(rx))
	}
	if string(rx[0]) != string(payload) || string(rx[4]) != string(payload) {
		t.Error("out-of-window frames were not delivered intact")
	}
	if string(rx[1]) == string(payload) {
		t.Error("in-window frame was not corrupted")
	}
	if string(rx[2]) != string(payload) || string(rx[3]) != string(payload) {
		t.Error("duplicated frames arrived corrupted")
	}
	if pa.FaultCorrupted != 1 || pa.FaultDuplicated != 1 {
		t.Errorf("FaultCorrupted/FaultDuplicated = %d/%d, want 1/1", pa.FaultCorrupted, pa.FaultDuplicated)
	}
	// The original frame must not be mutated in place.
	if string(payload) != "\x01\x02\x03\x04" {
		t.Error("corruption mutated the sender's payload slice")
	}
}

func TestEnginePartition(t *testing.T) {
	k := sim.NewKernel(1)
	victim := ipv4.NewStack(k, "victim")
	web := ipv4.NewStack(k, "web")
	e := New(k, Targets{Hosts: map[string]*ipv4.Stack{"victim": victim, "web": web}})
	mustInstall(t, e, "partition@1s+2s;partition@5s+1s(host=web)")

	type snap struct{ victim, web bool }
	var during, second, after snap
	k.At(2*sim.Second, func() { during = snap{victim.Partitioned(), web.Partitioned()} })
	k.At(5500*sim.Millisecond, func() { second = snap{victim.Partitioned(), web.Partitioned()} })
	k.At(7*sim.Second, func() { after = snap{victim.Partitioned(), web.Partitioned()} })
	k.Run()

	if during != (snap{true, false}) {
		t.Errorf("during first window: %+v, want victim only", during)
	}
	if second != (snap{false, true}) {
		t.Errorf("during second window: %+v, want web only", second)
	}
	if after != (snap{false, false}) {
		t.Errorf("after schedule: %+v, want none", after)
	}
}

func TestEngineInstallValidation(t *testing.T) {
	k := sim.NewKernel(1)
	e := New(k, Targets{}) // nothing wired up
	for _, schedule := range []string{
		"burst@1s", "apcrash@1s", "quiet@1s", "linkflap@1s",
		"deauth@1s", "jam@1s", "corrupt@1s", "dup@1s",
		"partition@1s", "partition@1s(host=nope)",
	} {
		sched, err := Parse(schedule)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Install(sched); err == nil {
			t.Errorf("Install(%q) with empty targets unexpectedly succeeded", schedule)
		}
	}
	// Double install is rejected.
	m := phy.NewMedium(k, phy.Config{})
	e2 := New(k, Targets{Medium: m})
	mustInstall(t, e2, "burst@1s")
	if err := e2.Install(Schedule{{Kind: KindBurst, At: sim.Second, Duration: sim.Second, Count: 1}}); err == nil {
		t.Error("second Install unexpectedly succeeded")
	}
}

func TestEngineDeterministicDigest(t *testing.T) {
	run := func(seed uint64) uint64 {
		k := sim.NewKernel(seed)
		m := phy.NewMedium(k, phy.Config{})
		a := m.AddRadio(phy.RadioConfig{Name: "a", Pos: phy.Position{X: 0}})
		b := m.AddRadio(phy.RadioConfig{Name: "b", Pos: phy.Position{X: 20}})
		b.SetReceiver(func(data []byte, info phy.RxInfo) {})
		e := New(k, Targets{Medium: m})
		mustInstall(t, e, "burst@100ms+3s(pgb=0.3,pbg=0.3,loss=0.7)")
		for i := 0; i < 40; i++ {
			at := sim.Time(i*100) * sim.Millisecond
			k.At(at, func() { a.Send(make([]byte, 200), phy.Rate11Mbps) })
		}
		k.Run()
		return k.Digest()
	}
	for _, seed := range []uint64{1, 7, 42} {
		if d1, d2 := run(seed), run(seed); d1 != d2 {
			t.Errorf("seed %d: digest diverged under faults: %016x != %016x", seed, d1, d2)
		}
	}
}
