package faults

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestParseEntryForms(t *testing.T) {
	cases := []struct {
		in   string
		want Injection
	}{
		{"apcrash@20s+3s", Injection{Kind: KindAPCrash, At: 20 * sim.Second, Duration: 3 * sim.Second, Count: 1}},
		{"burst@1s", Injection{Kind: KindBurst, At: sim.Second, Duration: DefaultDuration, Count: 1}},
		{"linkflap@15s+500ms*3/5s", Injection{Kind: KindLinkFlap, At: 15 * sim.Second, Duration: 500 * sim.Millisecond, Count: 3, Period: 5 * sim.Second}},
		{"deauth@2s+6s(interval=100ms)", Injection{Kind: KindDeauth, At: 2 * sim.Second, Duration: 6 * sim.Second, Count: 1, Params: map[string]string{"interval": "100ms"}}},
		{" quiet@1s + 2s ", Injection{Kind: KindQuiet, At: sim.Second, Duration: 2 * sim.Second, Count: 1}},
	}
	for _, c := range cases {
		sched, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if len(sched) != 1 {
			t.Errorf("Parse(%q): %d entries, want 1", c.in, len(sched))
			continue
		}
		got := sched[0]
		if got.Kind != c.want.Kind || got.At != c.want.At || got.Duration != c.want.Duration ||
			got.Count != c.want.Count || got.Period != c.want.Period {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
		for k, v := range c.want.Params {
			if got.Params[k] != v {
				t.Errorf("Parse(%q): param %s = %q, want %q", c.in, k, got.Params[k], v)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		";;",
		"frob@1s",          // unknown kind
		"burst",            // missing @start
		"burst@-1s",        // negative start
		"burst@1s+-2s",     // negative duration
		"burst@1s+2s*0/5s", // zero count
		"burst@1s+2s*3/1s", // period < duration
		"burst@1s+2s*3",    // repeat without period
		"burst@1s(pgb=)",   // empty param value
		"burst@1s(pgb=0.1", // unterminated params
		"burst@soon",       // unparseable duration
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", in)
		}
	}
}

func TestScheduleStringRoundTrip(t *testing.T) {
	in := "deauth@2s+6s(interval=100ms);apcrash@20s+3s;linkflap@15s+500ms*3/5s"
	s1, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(s1.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", s1.String(), err)
	}
	if s1.String() != s2.String() {
		t.Errorf("round trip changed schedule: %q != %q", s1.String(), s2.String())
	}
}

func TestLastEnd(t *testing.T) {
	s, err := Parse("burst@1s+2s;linkflap@10s+500ms*3/5s")
	if err != nil {
		t.Fatal(err)
	}
	// linkflap: last occurrence starts at 10s+2*5s=20s, clears at 20.5s.
	if want := 20*sim.Second + 500*sim.Millisecond; s.LastEnd() != want {
		t.Errorf("LastEnd = %v, want %v", s.LastEnd(), want)
	}
}

func TestBuiltinsAllParse(t *testing.T) {
	for _, name := range BuiltinNames() {
		sched, err := Resolve(name)
		if err != nil {
			t.Errorf("builtin %q does not parse: %v", name, err)
			continue
		}
		if sched.LastEnd() <= 0 {
			t.Errorf("builtin %q has a zero-length schedule", name)
		}
	}
	// Resolve must also accept a raw schedule string.
	if _, err := Resolve("burst@1s+2s"); err != nil {
		t.Errorf("Resolve(raw schedule): %v", err)
	}
	if _, err := Resolve("no-such-builtin"); err == nil {
		t.Error("Resolve(unknown name) unexpectedly succeeded")
	}
}

func TestInjectionParamAccessors(t *testing.T) {
	sched, err := Parse("burst@1s(pgb=0.5,interval=250ms,host=web)")
	if err != nil {
		t.Fatal(err)
	}
	inj := sched[0]
	if got := inj.Float("pgb", 0); got != 0.5 {
		t.Errorf("Float(pgb) = %v, want 0.5", got)
	}
	if got := inj.Float("missing", 0.25); got != 0.25 {
		t.Errorf("Float default = %v, want 0.25", got)
	}
	if got := inj.Dur("interval", 0); got != 250*sim.Millisecond {
		t.Errorf("Dur(interval) = %v, want 250ms", got)
	}
	if got := inj.Str("host", "victim"); got != "web" {
		t.Errorf("Str(host) = %q, want web", got)
	}
	if got := inj.Str("other", "victim"); got != "victim" {
		t.Errorf("Str default = %q, want victim", got)
	}
}

func FuzzParseSchedule(f *testing.F) {
	for _, full := range Builtins() {
		f.Add(full)
	}
	f.Add("burst@1s+2s*3/5s(pgb=0.1,loss=1)")
	f.Add("partition@0s(host=web);corrupt@1m+30s(p=0.5)")
	f.Add("jam@100ms")
	f.Fuzz(func(t *testing.T, in string) {
		sched, err := Parse(in)
		if err != nil {
			return
		}
		// Whatever parses must render canonically and re-parse to the same
		// canonical form.
		out := sched.String()
		again, err := Parse(out)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", out, in, err)
		}
		if again.String() != out {
			t.Fatalf("canonical form is not a fixed point: %q -> %q", out, again.String())
		}
		if strings.TrimSpace(in) != "" && sched.LastEnd() < 0 {
			t.Fatalf("negative LastEnd for %q", in)
		}
	})
}
