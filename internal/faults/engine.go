package faults

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/dot11"
	"repro/internal/ethernet"
	"repro/internal/ipv4"
	"repro/internal/phy"
	"repro/internal/sim"
)

// Targets names the pieces of an assembled world the engine may break. Any
// field may be nil/zero; Install rejects a schedule that needs a missing
// target, so a partial world (as unit tests build) only has to wire up what
// its schedule touches.
type Targets struct {
	// Medium carries burst-loss faults.
	Medium *phy.Medium
	// AP is the access point crashed by apcrash and silenced by quiet.
	AP *dot11.AP
	// STARadio is the client radio taken down by linkflap.
	STARadio *phy.Radio
	// VictimMAC and BSSID parameterise forged deauths: the storm targets
	// VictimMAC claiming to come from BSSID.
	VictimMAC ethernet.MAC
	BSSID     ethernet.MAC
	// Channel is where the deauther and jammer operate (the real AP's
	// channel), and AttackPos is where they stand.
	Channel   phy.Channel
	AttackPos phy.Position
	// UplinkPorts carry corrupt/dup faults; the engine covers both ends of
	// each cable.
	UplinkPorts []*ethernet.Port
	// Hosts maps names to partitionable IP stacks; a partition fault picks
	// its target with the "host" param, defaulting to DefaultHost.
	Hosts       map[string]*ipv4.Stack
	DefaultHost string
}

// Engine replays a Schedule as kernel events against a set of Targets.
// Everything it does — every injection, every revert, every random draw — is
// scheduled on the kernel and seeded from the kernel RNG, so a chaos run's
// digest is a pure function of (seed, schedule).
type Engine struct {
	kernel *sim.Kernel
	t      Targets
	sched  Schedule
	rng    *sim.RNG

	// depth tracks overlapping windows per kind: apply on 0→1, revert on
	// 1→0, so two overlapping burst windows don't clear each other.
	depth map[Kind]int

	deauther  *attack.Deauther
	jamRadio  *phy.Radio
	jammer    *phy.Jammer
	wireFault *ethernet.FaultProfile

	// OnFault, if set, observes every apply (active=true) and revert
	// (active=false) at its simulated time.
	OnFault func(now sim.Time, inj Injection, active bool)

	// Counters.
	Applied, Reverted uint64
}

// New creates an engine bound to a kernel and its targets. Nothing is
// scheduled (and no RNG state is consumed) until Install.
func New(k *sim.Kernel, t Targets) *Engine {
	if t.DefaultHost == "" {
		t.DefaultHost = "victim"
	}
	return &Engine{kernel: k, t: t, depth: make(map[Kind]int)}
}

// Schedule returns the installed schedule (nil before Install).
func (e *Engine) Schedule() Schedule { return e.sched }

// LastEnd reports when the installed schedule's final fault clears.
func (e *Engine) LastEnd() sim.Time { return e.sched.LastEnd() }

// Install validates the schedule against the targets and schedules every
// occurrence's apply/revert on the kernel. It must be called at most once,
// before the kernel runs past the schedule's first injection.
func (e *Engine) Install(s Schedule) error {
	if e.sched != nil {
		return fmt.Errorf("faults: engine already has a schedule installed")
	}
	for _, inj := range s {
		if err := e.check(inj); err != nil {
			return err
		}
	}
	// One forked stream for all fault randomness (wire corruption offsets,
	// etc.). Forked lazily here so fault-free worlds draw nothing extra.
	e.rng = e.kernel.RNG().Fork()
	e.sched = s
	// All apply/revert events go in as one batch: none of the lazy
	// constructors above the loop schedule anything, so the batch's entry
	// order is exactly the Schedule-call order it replaces and the event
	// seqs (hence digests) are unchanged. Storm schedules put hundreds of
	// occurrences on neighboring ticks; the batch amortizes slot lookups.
	nOcc := 0
	for _, inj := range s {
		nOcc += inj.Count
	}
	entries := make([]sim.BatchEntry, 0, 2*nOcc)
	for _, inj := range s {
		if e.needsWireFault(inj.Kind) && e.wireFault == nil {
			e.installWireFault()
		}
		if inj.Kind == KindDeauth && e.deauther == nil {
			e.deauther = attack.NewDeauther(e.kernel, e.t.Medium, e.t.AttackPos, e.t.Channel)
		}
		if inj.Kind == KindJam && e.jamRadio == nil {
			e.jamRadio = e.t.Medium.AddRadio(phy.RadioConfig{
				Name: "fault-jammer", Pos: e.t.AttackPos, Channel: e.t.Channel,
			})
		}
		for occ := 0; occ < inj.Count; occ++ {
			inj := inj
			start := inj.At + sim.Time(occ)*inj.Period
			entries = append(entries,
				sim.BatchEntry{When: start, Fn: func() { e.apply(inj) }},
				sim.BatchEntry{When: start + inj.Duration, Fn: func() { e.revert(inj) }})
		}
	}
	e.kernel.ScheduleBatch(entries)
	return nil
}

// check verifies the targets an injection needs are present.
func (e *Engine) check(inj Injection) error {
	missing := func(what string) error {
		return fmt.Errorf("faults: %s fault needs a %s target", inj.Kind, what)
	}
	switch inj.Kind {
	case KindBurst:
		if e.t.Medium == nil {
			return missing("Medium")
		}
	case KindAPCrash, KindQuiet:
		if e.t.AP == nil {
			return missing("AP")
		}
	case KindLinkFlap:
		if e.t.STARadio == nil {
			return missing("STARadio")
		}
	case KindDeauth, KindJam:
		if e.t.Medium == nil {
			return missing("Medium")
		}
		if inj.Kind == KindDeauth && (e.t.VictimMAC == (ethernet.MAC{}) || e.t.BSSID == (ethernet.MAC{})) {
			return missing("VictimMAC+BSSID")
		}
	case KindCorrupt, KindDup:
		if len(e.t.UplinkPorts) == 0 {
			return missing("UplinkPorts")
		}
	case KindPartition:
		name := inj.Str("host", e.t.DefaultHost)
		if e.t.Hosts[name] == nil {
			return fmt.Errorf("faults: partition fault targets unknown host %q", name)
		}
	}
	return nil
}

// needsWireFault reports whether kind drives the ethernet fault profile.
func (e *Engine) needsWireFault(kind Kind) bool {
	return kind == KindCorrupt || kind == KindDup
}

// installWireFault puts one zeroed profile on every uplink port and its cable
// peer. A zero profile draws no randomness and drops nothing; apply/revert
// just mutate its probabilities.
func (e *Engine) installWireFault() {
	e.wireFault = &ethernet.FaultProfile{RNG: e.rng}
	for _, p := range e.t.UplinkPorts {
		p.SetFaults(e.wireFault)
		if peer := p.Peer(); peer != nil {
			peer.SetFaults(e.wireFault)
		}
	}
}

func (e *Engine) apply(inj Injection) {
	e.depth[inj.Kind]++
	if e.depth[inj.Kind] != 1 {
		return
	}
	e.Applied++
	e.kernel.Tracef("faults", "inject %s", inj.Kind)
	switch inj.Kind {
	case KindBurst:
		e.t.Medium.SetBurstLoss(&phy.BurstLoss{
			PGoodToBad: inj.Float("pgb", 0.02),
			PBadToGood: inj.Float("pbg", 0.25),
			GoodLoss:   inj.Float("goodloss", 0),
			BadLoss:    inj.Float("loss", 0.9),
		})
	case KindAPCrash:
		e.t.AP.SetDown(true)
	case KindQuiet:
		e.t.AP.SuppressBeacons(true)
	case KindLinkFlap:
		e.t.STARadio.SetDown(true)
	case KindDeauth:
		e.deauther.Flood(e.t.VictimMAC, e.t.BSSID, inj.Dur("interval", 100*sim.Millisecond))
	case KindJam:
		e.jammer = phy.NewJammer(e.kernel, e.jamRadio, int(inj.Float("bytes", 1500)), 0)
	case KindCorrupt:
		e.wireFault.CorruptP = inj.Float("p", 0.01)
	case KindDup:
		e.wireFault.DupP = inj.Float("p", 0.01)
	case KindPartition:
		e.t.Hosts[inj.Str("host", e.t.DefaultHost)].SetPartitioned(true)
	}
	if e.OnFault != nil {
		e.OnFault(e.kernel.Now(), inj, true)
	}
}

func (e *Engine) revert(inj Injection) {
	e.depth[inj.Kind]--
	if e.depth[inj.Kind] != 0 {
		return
	}
	e.Reverted++
	e.kernel.Tracef("faults", "clear %s", inj.Kind)
	switch inj.Kind {
	case KindBurst:
		e.t.Medium.SetBurstLoss(nil)
	case KindAPCrash:
		e.t.AP.SetDown(false)
	case KindQuiet:
		e.t.AP.SuppressBeacons(false)
	case KindLinkFlap:
		e.t.STARadio.SetDown(false)
	case KindDeauth:
		e.deauther.Stop()
	case KindJam:
		if e.jammer != nil {
			e.jammer.Stop()
			e.jammer = nil
		}
	case KindCorrupt:
		e.wireFault.CorruptP = 0
	case KindDup:
		e.wireFault.DupP = 0
	case KindPartition:
		e.t.Hosts[inj.Str("host", e.t.DefaultHost)].SetPartitioned(false)
	}
	if e.OnFault != nil {
		e.OnFault(e.kernel.Now(), inj, false)
	}
}

// Quiescent reports whether no fault is currently applied (every window that
// opened has closed). The convergence invariant uses it to know the chaos is
// over.
func (e *Engine) Quiescent() bool {
	for _, d := range e.depth {
		if d != 0 {
			return false
		}
	}
	return true
}
