// Package udp implements the User Datagram Protocol over the simulated IPv4
// stack. The VPN package's datagram carrier (experiment E6's alternative to
// TCP-in-TCP) runs on it.
package udp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/inet"
	"repro/internal/ipv4"
)

// HeaderLen is the UDP header size.
const HeaderLen = 8

// Datagram is a parsed UDP datagram.
type Datagram struct {
	SrcPort, DstPort inet.Port
	Payload          []byte
}

// marshal serialises with the pseudo-header checksum.
func (d *Datagram) marshal(src, dst inet.Addr) []byte {
	b := make([]byte, HeaderLen+len(d.Payload))
	d.marshalInto(b, src, dst)
	return b
}

// marshalInto serialises into b, which must be exactly HeaderLen plus the
// payload length. Every byte is written, so b may come from a recycled
// buffer.
func (d *Datagram) marshalInto(b []byte, src, dst inet.Addr) {
	binary.BigEndian.PutUint16(b[0:2], uint16(d.SrcPort))
	binary.BigEndian.PutUint16(b[2:4], uint16(d.DstPort))
	binary.BigEndian.PutUint16(b[4:6], uint16(len(b)))
	b[6], b[7] = 0, 0 // checksum placeholder
	copy(b[HeaderLen:], d.Payload)
	sum := inet.PseudoHeaderSum(src, dst, ipv4.ProtoUDP, uint16(len(b)))
	sum = inet.SumBytes(sum, b)
	cs := inet.FinishChecksum(sum)
	if cs == 0 {
		cs = 0xffff
	}
	binary.BigEndian.PutUint16(b[6:8], cs)
}

// errBad reports an unparseable or corrupt datagram.
var errBad = errors.New("udp: bad datagram")

// unmarshal parses and verifies a datagram.
func unmarshal(src, dst inet.Addr, b []byte) (Datagram, error) {
	if len(b) < HeaderLen {
		return Datagram{}, errBad
	}
	length := binary.BigEndian.Uint16(b[4:6])
	if int(length) < HeaderLen || int(length) > len(b) {
		return Datagram{}, errBad
	}
	b = b[:length]
	if binary.BigEndian.Uint16(b[6:8]) != 0 { // checksum present
		sum := inet.PseudoHeaderSum(src, dst, ipv4.ProtoUDP, length)
		sum = inet.SumBytes(sum, b)
		if inet.FinishChecksum(sum) != 0 {
			return Datagram{}, errBad
		}
	}
	return Datagram{
		SrcPort: inet.Port(binary.BigEndian.Uint16(b[0:2])),
		DstPort: inet.Port(binary.BigEndian.Uint16(b[2:4])),
		Payload: b[HeaderLen:],
	}, nil
}

// Receiver consumes datagrams delivered to a bound socket.
type Receiver func(src inet.HostPort, payload []byte)

// Socket is a bound UDP endpoint.
type Socket struct {
	stack *Stack
	port  inet.Port
	recv  Receiver
}

// Port reports the bound local port.
func (s *Socket) Port() inet.Port { return s.port }

// SetReceiver installs the datagram callback.
func (s *Socket) SetReceiver(r Receiver) { s.recv = r }

// SendTo transmits a datagram to dst, serialising it into a pooled buffer
// whose headroom the lower layers push their headers into.
func (s *Socket) SendTo(dst inet.HostPort, payload []byte) error {
	src, err := s.stack.ip.SrcAddrFor(dst.Addr)
	if err != nil {
		return err
	}
	d := Datagram{SrcPort: s.port, DstPort: dst.Port, Payload: payload}
	pb := s.stack.ip.Kernel().BufPool().Get()
	d.marshalInto(pb.Extend(HeaderLen+len(payload)), src, dst.Addr)
	return s.stack.ip.SendBuf(src, dst.Addr, ipv4.ProtoUDP, pb)
}

// Close releases the port. Closing is idempotent, and closing a stale
// socket after its port has been rebound must not evict the new owner.
func (s *Socket) Close() {
	if s.stack.sockets[s.port] == s {
		delete(s.stack.sockets, s.port)
	}
}

// Stack is a host's UDP engine, bound to its IPv4 stack.
type Stack struct {
	ip        *ipv4.Stack
	sockets   map[inet.Port]*Socket
	nextEphem inet.Port

	// RxDatagrams counts deliveries; RxBad counts checksum/format drops;
	// RxNoSocket counts datagrams to unbound ports.
	RxDatagrams, RxBad, RxNoSocket uint64
}

// NewStack attaches UDP to an IPv4 stack.
func NewStack(ip *ipv4.Stack) *Stack {
	s := &Stack{ip: ip, sockets: make(map[inet.Port]*Socket), nextEphem: 49152}
	ip.Handle(ipv4.ProtoUDP, s.onPacket)
	return s
}

// Bind claims a specific port (0 picks an ephemeral one).
func (s *Stack) Bind(port inet.Port) (*Socket, error) {
	if port == 0 {
		port = s.ephemeral()
	}
	if _, taken := s.sockets[port]; taken {
		return nil, fmt.Errorf("udp: port %d in use", port)
	}
	sock := &Socket{stack: s, port: port}
	s.sockets[port] = sock
	return sock, nil
}

func (s *Stack) ephemeral() inet.Port {
	for {
		p := s.nextEphem
		s.nextEphem++
		if s.nextEphem == 0 {
			s.nextEphem = 49152
		}
		if _, taken := s.sockets[p]; !taken {
			return p
		}
	}
}

func (s *Stack) onPacket(pkt *ipv4.Packet, in string) {
	d, err := unmarshal(pkt.Src, pkt.Dst, pkt.Payload)
	if err != nil {
		s.RxBad++
		return
	}
	sock, ok := s.sockets[d.DstPort]
	if !ok || sock.recv == nil {
		s.RxNoSocket++
		return
	}
	s.RxDatagrams++
	sock.recv(inet.HostPort{Addr: pkt.Src, Port: d.SrcPort}, d.Payload)
}
