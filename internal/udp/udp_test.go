package udp

import (
	"testing"

	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/ipv4"
	"repro/internal/sim"
)

func newPair(t *testing.T) (*sim.Kernel, *Stack, *Stack) {
	t.Helper()
	k := sim.NewKernel(1)
	var alloc ethernet.MACAllocator
	sw := ethernet.NewSwitch(k, &alloc, ethernet.SwitchConfig{})
	prefix := inet.MustParsePrefix("10.0.0.0/24")
	ipA := ipv4.NewStack(k, "A")
	ipA.AddIface("eth0", sw.Attach(alloc.Next()), inet.MustParseAddr("10.0.0.1"), prefix)
	ipB := ipv4.NewStack(k, "B")
	ipB.AddIface("eth0", sw.Attach(alloc.Next()), inet.MustParseAddr("10.0.0.2"), prefix)
	return k, NewStack(ipA), NewStack(ipB)
}

func TestSendReceive(t *testing.T) {
	k, a, b := newPair(t)
	sb, err := b.Bind(53)
	if err != nil {
		t.Fatal(err)
	}
	var gotSrc inet.HostPort
	var gotData []byte
	sb.SetReceiver(func(src inet.HostPort, payload []byte) {
		gotSrc, gotData = src, append([]byte{}, payload...)
	})
	sa, _ := a.Bind(0)
	if err := sa.SendTo(inet.MustParseHostPort("10.0.0.2:53"), []byte("query")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if string(gotData) != "query" {
		t.Fatalf("got %q", gotData)
	}
	if gotSrc.Addr != inet.MustParseAddr("10.0.0.1") || gotSrc.Port != sa.Port() {
		t.Fatalf("src %v", gotSrc)
	}
}

func TestReplyPath(t *testing.T) {
	k, a, b := newPair(t)
	sb, _ := b.Bind(53)
	sb.SetReceiver(func(src inet.HostPort, payload []byte) {
		_ = sb.SendTo(src, append([]byte("re:"), payload...))
	})
	sa, _ := a.Bind(0)
	var got []byte
	sa.SetReceiver(func(src inet.HostPort, payload []byte) { got = append([]byte{}, payload...) })
	_ = sa.SendTo(inet.MustParseHostPort("10.0.0.2:53"), []byte("ping"))
	k.Run()
	if string(got) != "re:ping" {
		t.Fatalf("got %q", got)
	}
}

func TestUnboundPortDropped(t *testing.T) {
	k, a, b := newPair(t)
	sa, _ := a.Bind(0)
	_ = sa.SendTo(inet.MustParseHostPort("10.0.0.2:9"), []byte("x"))
	k.Run()
	if b.RxNoSocket != 1 {
		t.Fatalf("RxNoSocket = %d", b.RxNoSocket)
	}
}

func TestBindConflictAndClose(t *testing.T) {
	_, a, _ := newPair(t)
	s1, err := a.Bind(1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Bind(1000); err == nil {
		t.Fatal("double bind succeeded")
	}
	s1.Close()
	if _, err := a.Bind(1000); err != nil {
		t.Fatalf("rebind after close failed: %v", err)
	}
}

func TestEphemeralPortsUnique(t *testing.T) {
	_, a, _ := newPair(t)
	seen := map[inet.Port]bool{}
	for i := 0; i < 100; i++ {
		s, err := a.Bind(0)
		if err != nil {
			t.Fatal(err)
		}
		if seen[s.Port()] {
			t.Fatalf("duplicate ephemeral port %d", s.Port())
		}
		seen[s.Port()] = true
	}
}

func TestChecksumRejectsCorruption(t *testing.T) {
	src := inet.MustParseAddr("10.0.0.1")
	dst := inet.MustParseAddr("10.0.0.2")
	d := Datagram{SrcPort: 1, DstPort: 2, Payload: []byte("data")}
	raw := d.marshal(src, dst)
	if _, err := unmarshal(src, dst, raw); err != nil {
		t.Fatalf("clean datagram rejected: %v", err)
	}
	raw[8] ^= 1
	if _, err := unmarshal(src, dst, raw); err == nil {
		t.Fatal("corrupt datagram accepted")
	}
	if _, err := unmarshal(src, dst, raw[:4]); err == nil {
		t.Fatal("short datagram accepted")
	}
}

func TestLargePayload(t *testing.T) {
	k, a, b := newPair(t)
	sb, _ := b.Bind(53)
	var got int
	sb.SetReceiver(func(src inet.HostPort, payload []byte) { got = len(payload) })
	sa, _ := a.Bind(0)
	payload := make([]byte, 1400)
	_ = sa.SendTo(inet.MustParseHostPort("10.0.0.2:53"), payload)
	k.Run()
	if got != 1400 {
		t.Fatalf("got %d bytes", got)
	}
}
