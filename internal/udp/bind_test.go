package udp

import (
	"testing"

	"repro/internal/inet"
)

// TestBindCollision covers port ownership: a bound port cannot be claimed
// again until released, and release restores bindability.
func TestBindCollision(t *testing.T) {
	_, a, _ := newPair(t)

	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"second bind of same port fails", func(t *testing.T) {
			s1, err := a.Bind(5000)
			if err != nil {
				t.Fatal(err)
			}
			defer s1.Close()
			if _, err := a.Bind(5000); err == nil {
				t.Fatal("second Bind(5000) succeeded while port was held")
			}
		}},
		{"close frees the port", func(t *testing.T) {
			s1, err := a.Bind(5001)
			if err != nil {
				t.Fatal(err)
			}
			s1.Close()
			s2, err := a.Bind(5001)
			if err != nil {
				t.Fatalf("rebind after close failed: %v", err)
			}
			s2.Close()
		}},
		{"ephemeral binds skip held ports", func(t *testing.T) {
			held, err := a.Bind(0)
			if err != nil {
				t.Fatal(err)
			}
			defer held.Close()
			next, err := a.Bind(0)
			if err != nil {
				t.Fatal(err)
			}
			defer next.Close()
			if next.Port() == held.Port() {
				t.Fatalf("ephemeral allocator reused held port %d", held.Port())
			}
			if next.Port() < 49152 {
				t.Fatalf("ephemeral port %d below the dynamic range", next.Port())
			}
		}},
		{"stale close does not evict a rebound port", func(t *testing.T) {
			s1, err := a.Bind(5002)
			if err != nil {
				t.Fatal(err)
			}
			s1.Close()
			s2, err := a.Bind(5002)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			s1.Close() // stale handle, closed again
			if _, err := a.Bind(5002); err == nil {
				t.Fatal("stale Close released a port owned by a newer socket")
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.run)
	}
}

// TestCloseStopsDelivery verifies datagrams to a closed port are counted as
// unsocketed drops rather than delivered to the dead receiver.
func TestCloseStopsDelivery(t *testing.T) {
	k, a, b := newPair(t)
	sb, err := b.Bind(53)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	sb.SetReceiver(func(src inet.HostPort, payload []byte) { delivered++ })
	sa, _ := a.Bind(0)

	_ = sa.SendTo(inet.MustParseHostPort("10.0.0.2:53"), []byte("one"))
	k.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}

	sb.Close()
	before := b.RxNoSocket
	_ = sa.SendTo(inet.MustParseHostPort("10.0.0.2:53"), []byte("two"))
	k.Run()
	if delivered != 1 {
		t.Fatalf("delivery to closed socket: delivered = %d", delivered)
	}
	if b.RxNoSocket != before+1 {
		t.Fatalf("RxNoSocket = %d, want %d", b.RxNoSocket, before+1)
	}
}
