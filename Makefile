GO ?= go

.PHONY: all build test race bench simvet lint

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# simvet is the repo's own determinism-and-safety linter (cmd/simvet).
simvet:
	$(GO) run ./cmd/simvet ./...

# lint mirrors the CI lint job exactly; see scripts/lint.sh for the
# staticcheck/govulncheck version pins.
lint:
	sh scripts/lint.sh
