GO ?= go

.PHONY: all build test race bench bench-check soak profile simvet lint

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-check mirrors the CI bench-regression gate: fails on a >25% ns/op or
# allocs/op regression of any gated benchmark (E1–E15, the campus-world
# serial and parallel benches, the sharded-broadcast benches, the sim kernel
# events/sec and soak benches, the per-layer marshal micro-benches) vs the
# committed BENCH_PR10.json — and, on 4+-CPU hosts, on the windowed kernel's
# campus speedup falling below 2x.
bench-check:
	sh scripts/bench_check.sh

# soak runs the kernel soak benchmark for an extended stretch: a standing
# 4096-event storm advanced one simulated second per iteration, with the
# flat-memory assertion (EventAllocs must not grow after warmup) armed the
# whole time. SOAKTIME scales the stretch.
SOAKTIME ?= 30s
soak:
	$(GO) test -run '^$$' -bench 'KernelSoak' -benchmem -benchtime $(SOAKTIME) ./internal/sim/

# profile writes CPU+alloc pprof profiles of the experiment suite; pass a
# subset as RUN (e.g. `make profile RUN=e4`).
RUN ?= all
profile:
	sh scripts/profile.sh $(RUN)

# simvet is the repo's own determinism-and-safety linter (cmd/simvet): the
# five determinism analyzers plus the bufcheck ownership suite (bufleak,
# bufuseafter, eventpool) and the //simvet:owner directive validator.
simvet:
	$(GO) run ./cmd/simvet ./...

# lint mirrors the CI lint job exactly; see scripts/lint.sh for the
# staticcheck/govulncheck version pins.
lint:
	sh scripts/lint.sh
