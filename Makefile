GO ?= go

.PHONY: all build test race bench bench-check profile simvet lint

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-check mirrors the CI bench-regression gate: fails on a >25% ns/op or
# allocs/op regression of any E1–E12 benchmark vs the committed BENCH_PR5.json.
bench-check:
	sh scripts/bench_check.sh

# profile writes CPU+alloc pprof profiles of the experiment suite; pass a
# subset as RUN (e.g. `make profile RUN=e4`).
RUN ?= all
profile:
	sh scripts/profile.sh $(RUN)

# simvet is the repo's own determinism-and-safety linter (cmd/simvet).
simvet:
	$(GO) run ./cmd/simvet ./...

# lint mirrors the CI lint job exactly; see scripts/lint.sh for the
# staticcheck/govulncheck version pins.
lint:
	sh scripts/lint.sh
