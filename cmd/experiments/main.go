// Command experiments regenerates the paper-reproduction tables (DESIGN.md
// E1–E15). Run everything:
//
//	go run ./cmd/experiments
//
// Or a subset, faster:
//
//	go run ./cmd/experiments -run e2,e3 -trials 10
//	go run ./cmd/experiments -quick
//
// Profile a run (scripts/profile.sh wraps this):
//
//	go run ./cmd/experiments -run e4 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment ids (e1,e2,e2b,e2c,e2d,e3,e4,e5,e6,e7,e8,e9,e10,e11,e12,e13,e14,e15) or 'all'")
	trials := flag.Int("trials", 5, "trials per sweep point")
	quick := flag.Bool("quick", false, "reduce the heaviest experiments")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile (after a final GC) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle accounting so the profile shows live + total allocation
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	scale := experiments.Scale{Trials: *trials, Quick: *quick}
	want := map[string]bool{}
	for _, id := range strings.Split(strings.ToLower(*run), ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]

	type exp struct {
		id string
		fn func(experiments.Scale) experiments.Table
	}
	list := []exp{
		{"e1", experiments.E1AssociationCapture},
		{"e2", experiments.E2DownloadMITM},
		{"e2b", experiments.E2bBoundary},
		{"e2c", experiments.E2cContentInjection},
		{"e2d", experiments.E2dHostileHotspot},
		{"e3", experiments.E3VPNDefense},
		{"e4", experiments.E4FMSCrack},
		{"e5", experiments.E5MACFilterBypass},
		{"e6", experiments.E6TCPoverTCP},
		{"e7", experiments.E7Detection},
		{"e8", experiments.E8Eavesdrop},
		{"e9", experiments.E9Overhead},
		{"e10", experiments.E10DeauthStorm},
		{"e11", experiments.E11APOutage},
		{"e12", experiments.E12BurstLoss},
		{"e13", experiments.E13FirstHopRogue},
		{"e14", experiments.E14RelayChainChaos},
		{"e15", experiments.E15CampusScale},
	}
	ran := 0
	for _, e := range list {
		if !all && !want[e.id] {
			continue
		}
		start := time.Now()
		tbl := e.fn(scale)
		fmt.Println(tbl.String())
		fmt.Printf("(%s generated in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched -run=%q\n", *run)
		os.Exit(2)
	}
}
