// Command roguesim runs one named scenario of the reproduction and prints a
// narrative report — the quickest way to watch the paper's attack (or its
// defeat) happen.
//
//	go run ./cmd/roguesim -scenario attack
//	go run ./cmd/roguesim -scenario vpn
//	go run ./cmd/roguesim -scenario mesh
//	go run ./cmd/roguesim -scenario healthy -seed 7
//	go run ./cmd/roguesim -scenario detect
//	go run ./cmd/roguesim -scenario vpn -faults ap-restart
//	go run ./cmd/roguesim -scenario chaos-relay
//	go run ./cmd/roguesim -scenario mesh -faults relay-drop
//	go run ./cmd/roguesim -scenario healthy -faults "deauth@5s+10s(interval=100ms)"
//	go run ./cmd/roguesim -scenario campus-rogue -workers 4 -digest
//	go run ./cmd/roguesim -faults list
//
// The scenarios themselves live in internal/core (RunScenario), where the
// determinism tests replay them; this command only formats the outcome.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
)

func main() {
	scenario := flag.String("scenario", "attack", strings.Join(core.ScenarioNames(), " | "))
	seed := flag.Uint64("seed", 1, "simulation seed")
	check := flag.Bool("check", false, "enable kernel invariant checking (panics on violation)")
	digest := flag.Bool("digest", false, "print the trace digest after the run")
	schedule := flag.String("faults", "",
		"fault schedule: a builtin name, a raw schedule string, or \"list\" to enumerate builtins")
	workers := flag.Int("workers", 0,
		"kernel prepare lanes: 0 (default) runs the classic serial event loop; N>=1 enables the\nconservative-window parallel kernel — same trace digest, more cores on delivery math")
	flag.Parse()

	if *schedule == "list" {
		builtins := faults.Builtins()
		for _, name := range faults.BuiltinNames() {
			fmt.Printf("%-14s %s\n", name, builtins[name])
		}
		return
	}
	if *schedule != "" {
		if _, err := faults.Resolve(*schedule); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	o, err := core.RunScenarioOpts(*scenario, *seed, core.ScenarioOpts{
		Checks: *check, Faults: *schedule, Workers: *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if o.World == nil {
		// Campus scenarios: generated topology, no single-victim world.
		printCampus(o, *digest)
		return
	}
	cfg := o.World.Cfg // defaults filled in
	fmt.Printf("scenario: SSID %q, AP ch %d", cfg.SSID, cfg.APChannel)
	if cfg.Rogue {
		fmt.Printf(", rogue ch %d (cloned BSSID %v)", cfg.RogueChannel, cfg.RogueCloneBSSID)
	}
	fmt.Println()
	for _, m := range o.Milestones {
		fmt.Printf("t=%-6v %s\n", m.At.Duration().Round(1e6), m.Msg)
	}

	exitCode := 0
	if *scenario == "detect" {
		fmt.Printf("sensor analysed %d frames, raised %d alert(s)\n", o.FramesSeen, len(o.Alerts))
		if len(o.Alerts) == 0 {
			fmt.Println("no rogue detected (unexpected for a cloned BSSID)")
			exitCode = 1
		}
	} else {
		printDownload(o)
	}
	if o.World.Faults != nil {
		fmt.Printf("chaos: %d fault(s) applied, %d reverted, converged=%v\n",
			o.World.Faults.Applied, o.World.Faults.Reverted, o.Converged)
		if !o.Converged {
			exitCode = 1
		}
	}
	if *digest {
		fmt.Printf("trace digest: %016x\n", o.Digest)
	}
	os.Exit(exitCode)
}

func printCampus(o *core.ScenarioOutcome, digest bool) {
	r := o.CampusResult
	fmt.Printf("scenario: SSID %q, %d APs / %d stations (%s topology, seed %d)\n",
		core.CampusSSID, r.APs, r.STAs, o.Campus.Topo.Kind, o.Campus.Topo.Seed)
	for _, m := range o.Milestones {
		fmt.Printf("t=%-6v %s\n", m.At.Duration().Round(1e6), m.Msg)
	}
	exitCode := 0
	if o.Campus.Faults != nil {
		fmt.Printf("chaos: %d fault(s) applied, %d reverted, converged=%v\n",
			o.Campus.Faults.Applied, o.Campus.Faults.Reverted, o.Converged)
	}
	if !o.Converged {
		fmt.Printf("campus did not converge: %d/%d stations associated\n", r.Associated, r.STAs)
		exitCode = 1
	}
	if digest {
		fmt.Printf("trace digest: %016x\n", o.Digest)
	}
	os.Exit(exitCode)
}

func printDownload(o *core.ScenarioOutcome) {
	res := o.Download
	fmt.Println()
	fmt.Println("victim browses to the download page and runs md5sum:")
	if res.Err != nil {
		fmt.Println("  download failed:", res.Err)
		return
	}
	fmt.Printf("  link on page:    %s\n", res.Href)
	fmt.Printf("  page's MD5SUM:   %s\n", res.PageMD5)
	fmt.Printf("  md5 check:       passed=%v\n", res.MD5OK)
	fmt.Printf("  file contents:   %q\n", trim(string(res.Body), 72))
	fmt.Println()
	switch {
	case res.Compromised():
		fmt.Println("VERDICT: COMPROMISED — the victim verified and will run a trojan.")
	case res.Clean():
		fmt.Println("VERDICT: clean — the genuine file arrived and verified.")
	default:
		fmt.Printf("VERDICT: anomalous (tampered=%v md5ok=%v)\n", res.Tampered, res.MD5OK)
	}
	w := o.World
	if w.Cfg.Rogue && w.Rogue.Netsed != nil {
		fmt.Printf("(netsed: %d connection(s), %d substitution(s))\n",
			w.Rogue.Netsed.Connections, w.Rogue.Netsed.ReplacementsIn)
	}
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
