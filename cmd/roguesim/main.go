// Command roguesim runs one named scenario of the reproduction and prints a
// narrative report — the quickest way to watch the paper's attack (or its
// defeat) happen.
//
//	go run ./cmd/roguesim -scenario attack
//	go run ./cmd/roguesim -scenario vpn
//	go run ./cmd/roguesim -scenario healthy -seed 7
//	go run ./cmd/roguesim -scenario detect
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/dot11"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/wep"
)

func main() {
	scenario := flag.String("scenario", "attack", "healthy | attack | vpn | detect")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	switch *scenario {
	case "healthy":
		runDownload(*seed, core.Config{Seed: *seed}, false)
	case "attack":
		cfg := core.Config{
			Seed: *seed, WEPKey: wep.Key40FromString("SECRET"),
			Rogue: true, RogueCloneBSSID: true,
		}
		rogueGeometry(&cfg)
		runDownload(*seed, cfg, false)
	case "vpn":
		cfg := core.Config{
			Seed: *seed, WEPKey: wep.Key40FromString("SECRET"),
			Rogue: true, RogueCloneBSSID: true, VPNServer: true,
		}
		rogueGeometry(&cfg)
		runDownload(*seed, cfg, true)
	case "detect":
		runDetect(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
}

func rogueGeometry(cfg *core.Config) {
	cfg.APPos = phy.Position{X: 0, Y: 0}
	cfg.VictimPos = phy.Position{X: 40, Y: 0}
	cfg.RoguePos = phy.Position{X: 42, Y: 0}
}

func runDownload(seed uint64, cfg core.Config, withVPN bool) {
	w := core.NewWorld(cfg)
	cfg = w.Cfg // defaults filled in
	fmt.Printf("scenario: SSID %q, AP ch %d", cfg.SSID, cfg.APChannel)
	if cfg.Rogue {
		fmt.Printf(", rogue ch %d (cloned BSSID %v)", cfg.RogueChannel, cfg.RogueCloneBSSID)
	}
	fmt.Println()

	w.VictimConnect()
	w.Run(10 * sim.Second)
	fmt.Printf("t=%-6v victim associated: %v (channel %d)\n",
		w.Kernel.Now().Duration().Round(1e6), w.VictimAssociated(), w.Victim.STA.BSS().Channel)
	if cfg.Rogue {
		fmt.Printf("t=%-6v victim is on the ROGUE AP: %v; rogue uplink to CORP: %v\n",
			w.Kernel.Now().Duration().Round(1e6), w.VictimOnRogue(), w.Rogue.UplinkUp)
	}
	if withVPN {
		up := false
		w.EnableVictimVPN(nil, func(err error) {
			if err != nil {
				fmt.Println("VPN error:", err)
				return
			}
			up = true
		})
		w.Run(20 * sim.Second)
		fmt.Printf("t=%-6v VPN tunnel up: %v (tunnel IP %v)\n",
			w.Kernel.Now().Duration().Round(1e6), up, w.VictimVPN.TunnelIP())
	}

	var res core.DownloadResult
	w.VictimDownload(func(r core.DownloadResult) { res = r })
	w.Run(60 * sim.Second)

	fmt.Println()
	fmt.Println("victim browses to the download page and runs md5sum:")
	if res.Err != nil {
		fmt.Println("  download failed:", res.Err)
		return
	}
	fmt.Printf("  link on page:    %s\n", res.Href)
	fmt.Printf("  page's MD5SUM:   %s\n", res.PageMD5)
	fmt.Printf("  md5 check:       passed=%v\n", res.MD5OK)
	fmt.Printf("  file contents:   %q\n", trim(string(res.Body), 72))
	fmt.Println()
	switch {
	case res.Compromised():
		fmt.Println("VERDICT: COMPROMISED — the victim verified and will run a trojan.")
	case res.Clean():
		fmt.Println("VERDICT: clean — the genuine file arrived and verified.")
	default:
		fmt.Printf("VERDICT: anomalous (tampered=%v md5ok=%v)\n", res.Tampered, res.MD5OK)
	}
	if cfg.Rogue && w.Rogue.Netsed != nil {
		fmt.Printf("(netsed: %d connection(s), %d substitution(s))\n",
			w.Rogue.Netsed.Connections, w.Rogue.Netsed.ReplacementsIn)
	}
}

func runDetect(seed uint64) {
	cfg := core.Config{Seed: seed, Rogue: true, RogueCloneBSSID: true, RoguePureRelay: true}
	rogueGeometry(&cfg)
	w := core.NewWorld(cfg)
	mon := dot11.NewMonitor(w.Medium.AddRadio(phy.RadioConfig{Name: "sensor", Pos: phy.Position{X: 20}, Channel: 1}))
	d := detect.New(w.Kernel, detect.Config{})
	d.Attach(mon)
	detect.NewHopper(w.Kernel, mon, 200*sim.Millisecond)
	d.OnAlert = func(a detect.Alert) { fmt.Println("ALERT:", a.String()) }

	w.VictimConnect()
	w.Run(60 * sim.Second)
	fmt.Printf("sensor analysed %d frames, raised %d alert(s)\n", d.FramesSeen, len(d.Alerts))
	if len(d.Alerts) == 0 {
		fmt.Println("no rogue detected (unexpected for a cloned BSSID)")
		os.Exit(1)
	}
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
