// Command wepcrack demonstrates the Airsnort step of the paper's attack:
// passive FMS recovery of a WEP key from captured weak-IV traffic.
//
//	go run ./cmd/wepcrack
//	go run ./cmd/wepcrack -key 1337c0ffee -keysize 5
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/sim"
	"repro/internal/wep"
)

func main() {
	keyHex := flag.String("key", "", "target key in hex (default: ASCII 'SECRE')")
	keySize := flag.Int("keysize", 5, "key size in bytes: 5 (WEP-40) or 13 (WEP-104)")
	seed := flag.Uint64("seed", 1, "traffic generator seed")
	flag.Parse()

	var key wep.Key
	if *keyHex == "" {
		if *keySize == 13 {
			key = wep.Key([]byte("thirteenbytes"))
		} else {
			key = wep.Key40FromString("SECRE")
		}
	} else {
		b, err := hex.DecodeString(*keyHex)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad -key:", err)
			os.Exit(2)
		}
		key = wep.Key(b)
	}
	if err := key.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("target network key: %x (%d-bit WEP) — unknown to the attacker\n", []byte(key), len(key)*8)
	fmt.Println("sniffing... (frames with FMS-weak IVs feed the cracker)")

	cracker := wep.NewCracker(len(key))
	ref := wep.Seal(key, wep.IV{200, 1, 1}, 0, []byte("reference frame for verification"))
	cracker.Verify = func(k wep.Key) bool {
		_, err := wep.Open(k, ref)
		return err == nil
	}

	rng := sim.NewRNG(*seed)
	start := time.Now()
	payload := []byte{wep.SNAPFirstByte, 0xaa, 0x03, 0, 0, 0, 8, 0}
	const batch = 4096
	total := 0
	for attempt := 1; ; attempt++ {
		for i := 0; i < batch; i++ {
			iv := wep.IVFromUint32(rng.Uint32() & 0xffffff)
			total++
			if !iv.IsWeak(len(key)) {
				cracker.Frames++ // strong frames cost nothing but airtime
				continue
			}
			cracker.AddSealed(wep.Seal(key, iv, 0, payload))
		}
		got, err := cracker.RecoverKey()
		if err == nil {
			fmt.Printf("\nkey RECOVERED after %d captured frames (%d weak): %x\n",
				total, cracker.WeakFrames, []byte(got))
			fmt.Printf("wall time: %v\n", time.Since(start).Round(time.Millisecond))
			if string(got) != string(key) {
				fmt.Println("...but it does not match?! (report a bug)")
				os.Exit(1)
			}
			return
		}
		if attempt%64 == 0 {
			fmt.Printf("  %8d frames captured, %5d weak — still cracking\n", total, cracker.WeakFrames)
		}
		if total > 60_000_000 {
			fmt.Println("giving up after 60M frames")
			os.Exit(1)
		}
	}
}
