// Command simvet runs the repository's determinism-and-safety analyzer suite
// (internal/analysis) over Go package patterns:
//
//	go run ./cmd/simvet ./...
//
// It exits 0 when the tree is clean, 1 when any analyzer reports a
// diagnostic, and 2 on a driver failure (bad pattern, packages that do not
// typecheck). //simvet:allow suppressions are never silent: each one is
// surfaced as a note on stderr together with its mandatory reason.
//
// The suite and the contract it enforces are documented in DESIGN.md §8.
package main

import (
	"flag"
	"fmt"
	"os"

	simvet "repro/internal/analysis"
	"repro/internal/analysis/driver"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	quiet := flag.Bool("q", false, "suppress the //simvet:allow notes and the summary line")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simvet [-list] [-q] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the determinism contract analyzers (DESIGN.md §8) over the\ngiven package patterns (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := simvet.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	res, err := driver.Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range res.Diagnostics {
		fmt.Printf("%s\n", d)
	}
	if !*quiet {
		for _, s := range res.Suppressions {
			fmt.Fprintf(os.Stderr, "simvet: note: %s: suppressed %s diagnostic (reason: %s)\n", s.Pos, s.Analyzer, s.Reason)
		}
		fmt.Fprintf(os.Stderr, "simvet: %d package(s), %d diagnostic(s), %d suppression(s)\n",
			res.Packages, len(res.Diagnostics), len(res.Suppressions))
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
}
