// Command simvet runs the repository's determinism-and-safety analyzer suite
// (internal/analysis and internal/analysis/bufcheck) over Go package patterns:
//
//	go run ./cmd/simvet ./...
//
// It exits 0 when the tree is clean, 1 when any analyzer reports a
// diagnostic, and 2 on a driver failure (bad pattern, packages that do not
// typecheck). //simvet:allow suppressions are never silent: each one is
// surfaced as a note on stderr together with its mandatory reason.
//
// With -json the run is emitted as a single machine-readable object on
// stdout ({"diagnostics": […], "suppressions": […], "packages": N}), in the
// same deterministic (file, line, analyzer) order as the text output; CI
// turns it into GitHub ::error annotations (see scripts/simvet_annotate.sh).
//
// The suite and the contract it enforces are documented in DESIGN.md §8–§9.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	simvet "repro/internal/analysis"
	_ "repro/internal/analysis/bufcheck" // registers bufleak, bufuseafter, eventpool
	"repro/internal/analysis/driver"
)

// jsonReport is the -json output shape. Field order and slice order are
// deterministic so the encoding is byte-stable across runs.
type jsonReport struct {
	Diagnostics  []jsonDiagnostic  `json:"diagnostics"`
	Suppressions []jsonSuppression `json:"suppressions"`
	Packages     int               `json:"packages"`
}

type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type jsonSuppression struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	quiet := flag.Bool("q", false, "suppress the //simvet:allow notes and the summary line")
	asJSON := flag.Bool("json", false, "emit the run as one JSON object on stdout instead of text")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simvet [-list] [-q] [-json] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the determinism contract analyzers (DESIGN.md §8) over the\ngiven package patterns (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := simvet.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	res, err := driver.Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simvet: %v\n", err)
		os.Exit(2)
	}

	if *asJSON {
		report := jsonReport{
			Diagnostics:  []jsonDiagnostic{},
			Suppressions: []jsonSuppression{},
			Packages:     res.Packages,
		}
		for _, d := range res.Diagnostics {
			report.Diagnostics = append(report.Diagnostics, jsonDiagnostic{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		for _, s := range res.Suppressions {
			report.Suppressions = append(report.Suppressions, jsonSuppression{
				File: s.Pos.Filename, Line: s.Pos.Line, Column: s.Pos.Column,
				Analyzer: s.Analyzer, Reason: s.Reason, Message: s.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "simvet: %v\n", err)
			os.Exit(2)
		}
		if len(res.Diagnostics) > 0 {
			os.Exit(1)
		}
		return
	}

	for _, d := range res.Diagnostics {
		fmt.Printf("%s\n", d)
	}
	if !*quiet {
		for _, s := range res.Suppressions {
			fmt.Fprintf(os.Stderr, "simvet: note: %s: suppressed %s diagnostic (reason: %s)\n", s.Pos, s.Analyzer, s.Reason)
		}
		fmt.Fprintf(os.Stderr, "simvet: %d package(s), %d diagnostic(s), %d suppression(s)\n",
			res.Packages, len(res.Diagnostics), len(res.Suppressions))
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
}
