// wep-crack shows the attack's enabling step for networks whose key the
// attacker was not given: passive FMS key recovery ("an outside attacker
// who has retrieved the WEP key via Airsnort", paper §4). A monitor-mode
// radio sniffs a busy WEP cell; weak-IV frames feed the cracker until the
// key falls out.
//
// Sniffing the full multi-million-frame capture through the simulated air
// would work but takes a while, so this example sniffs a sample over the
// air (proving the capture path) and bulk-feeds the remaining weak-IV
// traffic directly — the cryptanalysis is identical.
//
//	go run ./examples/wep-crack
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/dot11"
	"repro/internal/ethernet"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/wep"
)

func main() {
	key := wep.Key40FromString("SECRE")
	k := sim.NewKernel(1)
	medium := phy.NewMedium(k, phy.Config{})

	// The target cell: an AP and a chatty client, WEP with sequential IVs
	// (what early-2000s firmware shipped).
	bssid := ethernet.MustParseMAC("02:aa:bb:cc:dd:01")
	ap := dot11.NewAP(k, medium.AddRadio(phy.RadioConfig{Name: "ap", Channel: 1}),
		dot11.APConfig{SSID: "CORP", BSSID: bssid, Channel: 1, WEPKey: key})
	ap.HostNIC().SetReceiver(func(f ethernet.Frame) {})
	sta := dot11.NewSTA(k, medium.AddRadio(phy.RadioConfig{Name: "sta", Pos: phy.Position{X: 10}, Channel: 1}),
		dot11.STAConfig{MAC: ethernet.MustParseMAC("02:00:00:00:03:01"), SSID: "CORP", WEPKey: key})
	sta.Connect()

	// The attacker: a monitor-mode radio feeding the FMS cracker.
	sniffer := attack.NewWEPSniffer(k, medium, phy.Position{X: 20}, 1, wep.KeySize40)

	// Generate some real over-the-air WEP traffic.
	k.RunUntil(5 * sim.Second)
	for i := 0; i < 200; i++ {
		sta.NIC().Send(bssid, ethernet.TypeIPv4, []byte("client chatter over WEP"))
	}
	k.RunUntil(10 * sim.Second)
	fmt.Printf("over-the-air: sniffer captured %d frames (%d with weak IVs)\n",
		sniffer.Cracker.Frames, sniffer.Cracker.WeakFrames)

	// Bulk phase: the long tail of a multi-hour capture, fed directly.
	iv := &wep.SequentialIV{}
	payload := dot11.EncapsulateLLC(ethernet.TypeIPv4, []byte("bulk traffic"))
	for sniffer.Cracker.WeakFrames < 1200 {
		sniffer.Cracker.AddSealed(wep.Seal(key, iv.NextIV(), 0, payload))
	}
	fmt.Printf("after the long capture: %d frames total, %d weak\n",
		sniffer.Cracker.Frames, sniffer.Cracker.WeakFrames)

	got, err := sniffer.TryRecoverKey()
	if err != nil {
		log.Fatalf("recovery failed: %v", err)
	}
	fmt.Printf("KEY RECOVERED: %x (%q)\n", []byte(got), got)
	if string(got) != string(key) {
		log.Fatal("recovered key does not match!")
	}
	fmt.Println("the attacker can now run the full rogue-AP MITM against this 'protected' network")
}
