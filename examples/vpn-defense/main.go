// vpn-defense reproduces the paper's Figure 3: the same rogue-AP MITM as
// examples/download-mitm, but the victim follows the paper's advice — ALL
// traffic rides a mutually authenticated tunnel to a trusted endpoint on
// the secure wired network. The rogue still relays every byte; it just
// can't read or modify any of it.
//
// The example also runs the split-tunnel ablation the paper's requirement 4
// ("must handle all client traffic") exists to forbid.
//
//	go run ./examples/vpn-defense
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/wep"
)

func run(split []inet.Prefix) core.DownloadResult {
	w := core.NewWorld(core.Config{
		Seed:   7,
		WEPKey: wep.Key40FromString("SECRET"),
		Rogue:  true, RogueCloneBSSID: true,
		VPNServer: true,
		APPos:     phy.Position{X: 0, Y: 0},
		VictimPos: phy.Position{X: 40, Y: 0},
		RoguePos:  phy.Position{X: 42, Y: 0},
	})
	w.VictimConnect()
	w.Run(10 * sim.Second)
	if !w.VictimOnRogue() {
		log.Fatal("rogue failed to capture the victim")
	}
	up := false
	w.EnableVictimVPN(split, func(err error) {
		if err != nil {
			log.Fatalf("vpn: %v", err)
		}
		up = true
	})
	w.Run(20 * sim.Second)
	if !up {
		log.Fatal("tunnel never came up")
	}
	var res core.DownloadResult
	w.VictimDownload(func(r core.DownloadResult) { res = r })
	w.Run(60 * sim.Second)
	if res.Err != nil {
		log.Fatalf("download: %v", res.Err)
	}
	return res
}

func main() {
	fmt.Println("victim policy 1: FULL tunnel (paper requirement 4)")
	full := run(nil)
	fmt.Printf("  tampered=%v md5ok=%v -> %s\n\n", full.Tampered, full.MD5OK, verdict(full))

	fmt.Println("victim policy 2: SPLIT tunnel (only 172.16/12 tunnelled — the ablation)")
	splitRes := run([]inet.Prefix{inet.MustParsePrefix("172.16.0.0/12")})
	fmt.Printf("  tampered=%v md5ok=%v -> %s\n\n", splitRes.Tampered, splitRes.MD5OK, verdict(splitRes))

	if !full.Clean() || !splitRes.Compromised() {
		log.Fatal("unexpected outcome — the defense story did not reproduce")
	}
	fmt.Println("Full tunnelling defeats the MITM; split tunnelling leaves the door open.")
}

func verdict(r core.DownloadResult) string {
	switch {
	case r.Compromised():
		return "COMPROMISED"
	case r.Clean():
		return "clean"
	default:
		return "anomalous"
	}
}
