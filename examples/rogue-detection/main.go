// rogue-detection runs the defender's side of Section 2.3: a channel-hopping
// monitor-mode sensor analysing 802.11 sequence-control numbers and beacon
// fingerprints while a cloned-BSSID rogue operates, and a deauth-flood
// attack for good measure.
//
//	go run ./examples/rogue-detection
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/dot11"
	"repro/internal/phy"
	"repro/internal/sim"
)

func main() {
	w := core.NewWorld(core.Config{
		Seed:  3,
		Rogue: true, RogueCloneBSSID: true, RoguePureRelay: true,
		APPos:     phy.Position{X: 0, Y: 0},
		VictimPos: phy.Position{X: 40, Y: 0},
		RoguePos:  phy.Position{X: 42, Y: 0},
	})

	// The sensor: one rfmon radio hopping all 11 channels.
	mon := dot11.NewMonitor(w.Medium.AddRadio(phy.RadioConfig{
		Name: "sensor", Pos: phy.Position{X: 20}, Channel: 1,
	}))
	det := detect.New(w.Kernel, detect.Config{})
	det.Attach(mon)
	detect.NewHopper(w.Kernel, mon, 200*sim.Millisecond)

	seen := map[detect.AlertKind]bool{}
	det.OnAlert = func(a detect.Alert) {
		if !seen[a.Kind] {
			seen[a.Kind] = true
			fmt.Printf("t=%-8v first %v alert: %s\n",
				a.At.Duration().Round(1e6), a.Kind, a.Detail)
		}
	}

	w.VictimConnect()
	w.Run(30 * sim.Second)

	// Phase 2: the attacker also deauth-floods the victim; the sensor's
	// rate monitor should flag it.
	deauther := attack.NewDeauther(w.Kernel, w.Medium, phy.Position{X: 42}, 1)
	deauther.Flood(core.VictimMAC, core.CorpBSSID, 50*sim.Millisecond)
	w.Run(10 * sim.Second)
	deauther.Stop()
	w.Run(5 * sim.Second)

	fmt.Printf("\nsensor analysed %d frames; %d total alerts\n", det.FramesSeen, len(det.Alerts))
	for _, kind := range []detect.AlertKind{
		detect.AlertBeaconMismatch, detect.AlertSeqAnomaly, detect.AlertDeauthFlood,
	} {
		fmt.Printf("  %-18v detected: %v\n", kind, len(det.AlertsOf(kind)) > 0)
	}
	if len(det.AlertsOf(detect.AlertBeaconMismatch)) == 0 && len(det.AlertsOf(detect.AlertSeqAnomaly)) == 0 {
		log.Fatal("the cloned-BSSID rogue went undetected")
	}
	if len(det.AlertsOf(detect.AlertDeauthFlood)) == 0 {
		log.Fatal("the deauth flood went undetected")
	}
}
