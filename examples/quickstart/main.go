// Quickstart: build the smallest healthy world — a CORP access point
// bridging a wireless victim onto a wired network with a web server — and
// fetch a page over it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	// A World bundles the simulated air (phy), the 802.11 MAC (dot11), the
	// wired LAN (ethernet), IP/TCP stacks, and the paper's software-download
	// site. Everything runs in virtual time on one event loop.
	w := core.NewWorld(core.Config{Seed: 42})

	// The victim laptop scans, authenticates and associates.
	w.VictimConnect()
	w.Run(10 * sim.Second)
	if !w.VictimAssociated() {
		log.Fatal("victim failed to associate")
	}
	fmt.Printf("victim associated to %q on channel %d (RSSI %.1f dBm)\n",
		w.Victim.STA.BSS().SSID, w.Victim.STA.BSS().Channel, w.Victim.STA.BSS().RSSIDBm)

	// Fetch the download page and the file, verifying the published MD5 —
	// the exact flow the paper's attack subverts (here: no attacker).
	var res core.DownloadResult
	w.VictimDownload(func(r core.DownloadResult) { res = r })
	w.Run(30 * sim.Second)

	if res.Err != nil {
		log.Fatalf("download failed: %v", res.Err)
	}
	fmt.Printf("downloaded %q (%d bytes)\n", res.Href, len(res.Body))
	fmt.Printf("md5 verification passed: %v\n", res.MD5OK)
	fmt.Printf("clean download: %v\n", res.Clean())
}
