// download-mitm reproduces the paper's Section 4 proof of concept end to
// end (Figures 1 and 2):
//
//  1. The CORP network runs WEP with the shared key "SECRET".
//
//  2. The attacker's laptop associates to CORP with one card and runs a
//     rogue AP on a second card — same SSID, same cloned BSSID, same WEP
//     key, different channel — exactly Figure 1.
//
//  3. parprouted bridges the cards; Netfilter DNATs the victim's port-80
//     traffic to a local netsed; netsed rewrites the download link and the
//     page's MD5 sum — exactly Figure 2.
//
//  4. The victim associates to the rogue (stronger signal), downloads,
//     checks the MD5... and it PASSES on the trojan.
//
//     go run ./examples/download-mitm
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/wep"
)

func main() {
	w := core.NewWorld(core.Config{
		Seed:   7,
		WEPKey: wep.Key40FromString("SECRET"),

		Rogue:           true,
		RogueCloneBSSID: true, // Figure 1: both APs present AA:BB:CC:DD

		// Geometry: the victim sits 40 m from the real AP; the rogue parks
		// 2 m away. Best-RSSI client firmware does the rest.
		APPos:     phy.Position{X: 0, Y: 0},
		VictimPos: phy.Position{X: 40, Y: 0},
		RoguePos:  phy.Position{X: 42, Y: 0},

		FileContents:   []byte("the real installer the user wanted\n"),
		TrojanContents: []byte("the same installer, plus a backdoor\n"),
	})

	w.VictimConnect()
	w.Run(10 * sim.Second)
	fmt.Println("victim on rogue AP:", w.VictimOnRogue())
	fmt.Println("rogue uplink (attacker associated to CORP):", w.Rogue.UplinkUp)
	if !w.VictimOnRogue() {
		log.Fatal("rogue failed to capture the victim")
	}

	var res core.DownloadResult
	w.VictimDownload(func(r core.DownloadResult) { res = r })
	w.Run(60 * sim.Second)
	if res.Err != nil {
		log.Fatalf("download failed: %v", res.Err)
	}

	fmt.Println()
	fmt.Println("what the victim saw:")
	fmt.Printf("  page link:  %s\n", res.Href)
	fmt.Printf("  page MD5:   %s\n", res.PageMD5)
	fmt.Printf("  md5sum:     %v  <-- the victim's own integrity check\n", res.MD5OK)
	fmt.Printf("  downloaded: %q\n", res.Body)
	fmt.Println()
	if res.Compromised() {
		fmt.Println("COMPROMISED: the victim verified and will run the trojan.")
		fmt.Printf("netsed applied %d substitution(s) across %d proxied connection(s).\n",
			w.Rogue.Netsed.ReplacementsIn, w.Rogue.Netsed.Connections)
	} else {
		log.Fatalf("attack failed: %+v", res)
	}
}
