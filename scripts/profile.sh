#!/bin/sh
# scripts/profile.sh — profile one or more experiments through
# cmd/experiments' -cpuprofile/-memprofile flags and print the hot
# functions. Usage:
#
#   scripts/profile.sh [ids [extra cmd/experiments flags...]]
#
# ids is the -run selector (default "all"), e.g.:
#
#   scripts/profile.sh e4
#   scripts/profile.sh e10,e11,e12 -trials 10
#
# Profiles land in profiles/<ids>.{cpu,mem}.pprof; dig further with
#   go tool pprof profiles/e4.cpu.pprof
set -eu

cd "$(dirname "$0")/.."

RUN=${1:-all}
if [ $# -gt 0 ]; then
	shift
fi
mkdir -p profiles
STEM="profiles/$(echo "$RUN" | tr ',' '-')"

go run ./cmd/experiments -run "$RUN" -cpuprofile "$STEM.cpu.pprof" -memprofile "$STEM.mem.pprof" "$@" > /dev/null

echo "== CPU: $STEM.cpu.pprof =="
go tool pprof -top -nodecount 15 "$STEM.cpu.pprof"
echo
echo "== allocations: $STEM.mem.pprof =="
go tool pprof -top -nodecount 15 -sample_index=alloc_objects "$STEM.mem.pprof"
