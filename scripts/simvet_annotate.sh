#!/bin/sh
# scripts/simvet_annotate.sh — turn `simvet -json` output (stdin) into GitHub
# Actions workflow commands: one ::error per diagnostic (so findings show up
# inline on the PR diff) and one ::notice per //simvet:allow suppression (so
# accepted exceptions stay visible instead of silently scrolling by).
#
#   go run ./cmd/simvet -json ./... | sh scripts/simvet_annotate.sh
#
# Exits 1 when the report contains any diagnostic, so the CI step fails the
# same way plain simvet does. Requires jq (preinstalled on GitHub runners);
# without it the JSON is passed through untouched and the simvet exit code is
# the only gate.
set -eu

if ! command -v jq >/dev/null 2>&1; then
	echo "simvet_annotate: jq not found; passing the JSON through unannotated" >&2
	cat
	exit 0
fi

report=$(cat)
root="$(pwd)/"

# GitHub workflow commands carry the message on one line; %, CR and LF must
# be escaped per the workflow-command spec. file= wants repo-relative paths,
# while the driver reports absolute ones — strip the working tree prefix.
printf '%s\n' "$report" | jq -r --arg root "$root" '
	def esc: gsub("%"; "%25") | gsub("\r"; "%0D") | gsub("\n"; "%0A");
	def rel: if startswith($root) then .[($root | length):] else . end;
	(.diagnostics[]
		| "::error file=\(.file | rel),line=\(.line),col=\(.column),title=simvet \(.analyzer)::\(.message | esc)"),
	(.suppressions[]
		| "::notice file=\(.file | rel),line=\(.line),col=\(.column),title=simvet:allow \(.analyzer)::suppressed \(.analyzer) diagnostic (reason: \(.reason | esc))")
'

printf '%s\n' "$report" |
	jq -r '"simvet: \(.packages) package(s), \(.diagnostics | length) diagnostic(s), \(.suppressions | length) suppression(s)"' >&2

count=$(printf '%s\n' "$report" | jq '.diagnostics | length')
[ "$count" -eq 0 ] || exit 1
