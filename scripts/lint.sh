#!/bin/sh
# scripts/lint.sh — the lint gate, identical to the `lint` job in
# .github/workflows/ci.yml. `make lint` runs this.
#
# go vet and simvet always run (both ship with the repo). staticcheck and
# govulncheck need a network install, so locally they are skipped when not
# on PATH; CI always installs the pinned versions below. Keep the pins here
# and in ci.yml in lockstep.
set -eu

STATICCHECK_VERSION=${STATICCHECK_VERSION:-2024.1.1}
GOVULNCHECK_VERSION=${GOVULNCHECK_VERSION:-v1.1.3}

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== simvet self-tests (analyzer fixtures) =="
go test -run 'TestSuiteNames|TestBufleak|TestBufuseafter|TestEventpool|TestOwnerValidator|TestAllow|TestEndToEnd' ./internal/analysis/...

echo "== simvet (determinism + ownership contract) =="
if [ "${GITHUB_ACTIONS:-}" = "true" ]; then
	# Inside Actions, emit ::error/::notice annotations on the PR diff.
	go run ./cmd/simvet -json ./... | sh scripts/simvet_annotate.sh
else
	go run ./cmd/simvet ./...
fi

if command -v staticcheck >/dev/null 2>&1; then
	echo "== staticcheck =="
	staticcheck ./...
else
	echo "== staticcheck: not installed, skipping (CI pins ${STATICCHECK_VERSION}) =="
fi

if command -v govulncheck >/dev/null 2>&1; then
	echo "== govulncheck =="
	govulncheck ./...
else
	echo "== govulncheck: not installed, skipping (CI pins ${GOVULNCHECK_VERSION}) =="
fi
