#!/bin/sh
# scripts/bench.sh — run the benchmark suite and emit a JSON summary:
#
#   - the root-package experiment benchmarks (E1–E15, the campus-world
#     throughput benches — serial and conservative-window parallel — and
#     the chaos digest matrix), once each (-benchtime 1x: they are whole
#     experiments);
#   - the sim kernel throughput benchmarks (events/sec at several standing
#     queue depths, the reference-heap comparison, and the soak bench);
#   - the sharded-medium broadcast benchmarks (per-transmission delivery
#     cost at 64/1k/4k radios, plus the unsharded 1k comparison floor);
#   - the per-layer marshal micro-benches (WEP seal, TCP segment, IPv4
#     header push, 802.11 header).
#
# Kernel and marshal benches run with a real -benchtime so single-shot noise
# never flaps the regression gate that consumes this file.
#
# Usage:
#
#   scripts/bench.sh [out.json [baseline]]
#
# out.json defaults to BENCH_PR10.json. baseline, when given, is either a
# saved `go test -bench` text output or a JSON file previously emitted by
# this script (e.g. BENCH_PR9.json); its numbers are embedded per benchmark
# as baseline_* fields for before/after comparison across a change. When no
# baseline is named, BENCH_PR9.json is used if present.
#
# BENCH_NOTES, if set in the environment, is embedded verbatim as a "notes"
# string — use it to record why a number was re-baselined.
set -eu

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_PR10.json}
BASELINE=${2:-}
if [ -z "$BASELINE" ] && [ -f BENCH_PR9.json ] && [ "$OUT" != "BENCH_PR9.json" ]; then
	BASELINE=BENCH_PR9.json
fi
MICROTIME=${MICROTIME:-1s}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench . -benchmem -benchtime 1x . | tee "$TMP"
go test -run '^$' -bench 'KernelEventsPerSec|RefHeapEventsPerSec|KernelSoak' \
	-benchmem -benchtime "$MICROTIME" ./internal/sim/ | tee -a "$TMP"
go test -run '^$' -bench 'MediumBroadcast/|MediumBroadcastUnsharded' \
	-benchmem -benchtime "$MICROTIME" ./internal/phy/ | tee -a "$TMP"
go test -run '^$' -bench 'WEPSeal$|TCPMarshal$|IPv4Push$|Dot11Data$' \
	-benchmem -benchtime "$MICROTIME" \
	./internal/wep/ ./internal/tcp/ ./internal/ipv4/ ./internal/dot11/ | tee -a "$TMP"

awk -v baseline="$BASELINE" -v notes="${BENCH_NOTES:-}" '
function bname(s) { sub(/^Benchmark/, "", s); sub(/-[0-9]+$/, "", s); return s }
# jnum extracts the numeric value of key from a JSON line emitted by this
# script, or "" when absent. Handles integers and decimals.
function jnum(line, key,    re, m) {
	re = "\"" key "\": *-?[0-9]+(\\.[0-9]+)?"
	if (match(line, re) == 0) return ""
	m = substr(line, RSTART, RLENGTH)
	sub(/.*: */, "", m)
	return m
}
# parsebench reads one `go test -bench -benchmem` result line into the
# global arrays keyed by unit, so extra b.ReportMetric columns (events/sec,
# simsec/wallsec) never shift the standard ones.
function parsebench(   i, unit, val) {
	delete metric
	for (i = 3; i < NF; i += 2) {
		val = $i; unit = $(i + 1)
		if (unit == "ns/op") metric["ns"] = val
		else if (unit == "B/op") metric["bytes"] = val
		else if (unit == "allocs/op") metric["allocs"] = val
		else if (unit == "events/sec") metric["events_per_sec"] = val
		else if (unit == "simsec/wallsec") metric["simsec_per_wallsec"] = val
	}
}
BEGIN {
	if (baseline != "") {
		while ((getline line < baseline) > 0) {
			if (line ~ /^Benchmark/) {
				# Saved text output of `go test -bench -benchmem`.
				n = split(line, f, /[ \t]+/)
				name = bname(f[1])
				for (i = 3; i < n; i += 2) {
					if (f[i + 1] == "ns/op") bns[name] = f[i]
					else if (f[i + 1] == "B/op") bbytes[name] = f[i]
					else if (f[i + 1] == "allocs/op") ballocs[name] = f[i]
				}
			} else if (line ~ /"name":/) {
				# JSON from a previous run of this script.
				split(line, q, "\"")
				name = q[4]
				if (jnum(line, "ns_per_op") != "") {
					bns[name] = jnum(line, "ns_per_op")
					bbytes[name] = jnum(line, "bytes_per_op")
					ballocs[name] = jnum(line, "allocs_per_op")
				}
			}
		}
		close(baseline)
	}
	print "{"
	print "  \"command\": \"scripts/bench.sh (root E-benches at 1x; sim kernel + marshal micro-benches at a real benchtime)\","
	if (notes != "") {
		gsub(/\\/, "\\\\", notes); gsub(/"/, "\\\"", notes)
		printf "  \"notes\": \"%s\",\n", notes
	}
	printf "  \"benchmarks\": ["
	first = 1
}
$1 ~ /^Benchmark/ && / ns\/op/ {
	name = bname($1)
	parsebench()
	if (!first) printf ","
	first = 0
	printf "\n    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", \
		name, metric["ns"], metric["bytes"], metric["allocs"]
	if ("events_per_sec" in metric)
		printf ", \"events_per_sec\": %s", metric["events_per_sec"]
	if ("simsec_per_wallsec" in metric)
		printf ", \"simsec_per_wallsec\": %s", metric["simsec_per_wallsec"]
	if (name in bns)
		printf ",\n     \"baseline_ns_per_op\": %s, \"baseline_bytes_per_op\": %s, \"baseline_allocs_per_op\": %s", \
			bns[name], bbytes[name], ballocs[name]
	printf "}"
}
END { print "\n  ]\n}" }
' "$TMP" > "$OUT"

echo "wrote $OUT"
