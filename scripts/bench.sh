#!/bin/sh
# scripts/bench.sh — run the root-package experiment benchmarks (E1–E12 and
# the chaos digest matrix) once with allocation stats and emit a JSON
# summary. Usage:
#
#   scripts/bench.sh [out.json [baseline]]
#
# out.json defaults to BENCH_PR5.json. baseline, when given, is either a
# saved `go test -bench` text output or a JSON file previously emitted by
# this script (e.g. BENCH_PR4.json); its numbers are embedded per benchmark
# as baseline_* fields for before/after comparison across a change. When no
# baseline is named, BENCH_PR4.json is used if present.
#
# BENCH_NOTES, if set in the environment, is embedded verbatim as a "notes"
# string — use it to record why a number was re-baselined.
set -eu

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_PR5.json}
BASELINE=${2:-}
if [ -z "$BASELINE" ] && [ -f BENCH_PR4.json ] && [ "$OUT" != "BENCH_PR4.json" ]; then
	BASELINE=BENCH_PR4.json
fi
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench . -benchmem -benchtime 1x . | tee "$TMP"

awk -v baseline="$BASELINE" -v notes="${BENCH_NOTES:-}" '
function bname(s) { sub(/^Benchmark/, "", s); sub(/-[0-9]+$/, "", s); return s }
BEGIN {
	if (baseline != "") {
		while ((getline line < baseline) > 0) {
			n = split(line, f, /[ \t]+/)
			if (f[1] ~ /^Benchmark/ && f[4] == "ns/op") {
				# Saved text output of `go test -bench -benchmem`.
				name = bname(f[1])
				bns[name] = f[3]; bbytes[name] = f[5]; ballocs[name] = f[7]
			} else if (line ~ /"name":/) {
				# JSON from a previous run of this script: the "name" line
				# carries exactly ns/bytes/allocs, in that order, as its
				# last three numeric fields.
				split(line, q, "\"")
				name = q[4]
				n = split(line, f, /[^0-9]+/)
				m = 0
				for (i = 1; i <= n; i++) if (f[i] != "") { m++; t[m] = f[i] }
				if (m >= 3) {
					bns[name] = t[m-2]; bbytes[name] = t[m-1]; ballocs[name] = t[m]
				}
			}
		}
		close(baseline)
	}
	print "{"
	print "  \"command\": \"go test -run ^$ -bench . -benchmem -benchtime 1x .\","
	if (notes != "") {
		gsub(/\\/, "\\\\", notes); gsub(/"/, "\\\"", notes)
		printf "  \"notes\": \"%s\",\n", notes
	}
	printf "  \"benchmarks\": ["
	first = 1
}
$1 ~ /^Benchmark/ && $4 == "ns/op" {
	name = bname($1)
	if (!first) printf ","
	first = 0
	printf "\n    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", \
		name, $3, $5, $7
	if (name in bns)
		printf ",\n     \"baseline_ns_per_op\": %s, \"baseline_bytes_per_op\": %s, \"baseline_allocs_per_op\": %s", \
			bns[name], bbytes[name], ballocs[name]
	printf "}"
}
END { print "\n  ]\n}" }
' "$TMP" > "$OUT"

echo "wrote $OUT"
