#!/bin/sh
# scripts/bench.sh — run the root-package experiment benchmarks (E1–E12 and
# the chaos digest matrix) once with allocation stats and emit a JSON
# summary. Usage:
#
#   scripts/bench.sh [out.json [baseline.txt]]
#
# out.json defaults to BENCH_PR4.json. baseline.txt, when given, is a saved
# `go test -bench` text output whose numbers are embedded per benchmark as
# baseline_* fields, for before/after comparison across a change.
set -eu

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_PR4.json}
BASELINE=${2:-}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench . -benchmem -benchtime 1x . | tee "$TMP"

awk -v baseline="$BASELINE" '
function bname(s) { sub(/^Benchmark/, "", s); sub(/-[0-9]+$/, "", s); return s }
BEGIN {
	if (baseline != "") {
		while ((getline line < baseline) > 0) {
			n = split(line, f, /[ \t]+/)
			if (f[1] ~ /^Benchmark/ && f[4] == "ns/op") {
				name = bname(f[1])
				bns[name] = f[3]; bbytes[name] = f[5]; ballocs[name] = f[7]
			}
		}
		close(baseline)
	}
	print "{"
	print "  \"command\": \"go test -run ^$ -bench . -benchmem -benchtime 1x .\","
	printf "  \"benchmarks\": ["
	first = 1
}
$1 ~ /^Benchmark/ && $4 == "ns/op" {
	name = bname($1)
	if (!first) printf ","
	first = 0
	printf "\n    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", \
		name, $3, $5, $7
	if (name in bns)
		printf ",\n     \"baseline_ns_per_op\": %s, \"baseline_bytes_per_op\": %s, \"baseline_allocs_per_op\": %s", \
			bns[name], bbytes[name], ballocs[name]
	printf "}"
}
END { print "\n  ]\n}" }
' "$TMP" > "$OUT"

echo "wrote $OUT"
