#!/bin/sh
# scripts/bench_check.sh — benchmark regression gate. Re-runs the experiment
# benchmarks via scripts/bench.sh and compares every E1–E12 benchmark against
# a committed reference JSON (default BENCH_PR5.json): the gate fails if
# ns/op or allocs/op regressed by more than TOL percent (default 25).
#
#   scripts/bench_check.sh [reference.json]
#
# allocs/op is deterministic, so any trip there is a real regression; ns/op
# is machine-dependent, hence the generous threshold. The chaos digest
# matrix benchmark is reported but not gated (pure wall-time, no E-table).
set -eu

cd "$(dirname "$0")/.."

REF=${1:-BENCH_PR5.json}
TOL=${TOL:-25}
if [ ! -f "$REF" ]; then
	echo "bench_check: missing reference $REF" >&2
	exit 2
fi

CUR=$(mktemp)
trap 'rm -f "$CUR"' EXIT

# /dev/null baseline: emit plain numbers, no baseline_* embedding.
sh scripts/bench.sh "$CUR" /dev/null

awk -v tol="$TOL" -v ref="$REF" '
# Both files are bench.sh JSON: the "name" line carries ns/bytes/allocs as
# its last three numeric fields.
function parse(line) {
	split(line, q, "\"")
	pname = q[4]
	n = split(line, f, /[^0-9]+/)
	m = 0
	for (i = 1; i <= n; i++) if (f[i] != "") { m++; t[m] = f[i] }
	pns = t[m-2]; pallocs = t[m]
}
BEGIN {
	while ((getline line < ref) > 0) {
		if (line !~ /"name":/) continue
		parse(line)
		rns[pname] = pns; rallocs[pname] = pallocs
	}
	close(ref)
	fail = 0
}
/"name":/ {
	parse($0)
	if (!(pname in rns)) {
		printf "NEW     %-24s ns/op=%s allocs/op=%s (no reference)\n", pname, pns, pallocs
		next
	}
	gated = (pname ~ /^E[0-9]/)
	nslim = rns[pname] * (1 + tol / 100)
	allocslim = rallocs[pname] * (1 + tol / 100)
	verdict = "ok"
	if (gated && (pns + 0 > nslim || pallocs + 0 > allocslim)) {
		verdict = "REGRESSED"
		fail = 1
	} else if (!gated) {
		verdict = "ungated"
	}
	printf "%-9s %-24s ns/op %s -> %s, allocs/op %s -> %s\n", \
		verdict, pname, rns[pname], pns, rallocs[pname], pallocs
}
END {
	if (fail) {
		printf "bench_check: regression beyond %s%% of %s\n", tol, ref
		exit 1
	}
	printf "bench_check: all gated benchmarks within %s%% of %s\n", tol, ref
}
' "$CUR"
