#!/bin/sh
# scripts/bench_check.sh — benchmark regression gate. Re-runs the benchmark
# suite via scripts/bench.sh and compares every gated benchmark against a
# committed reference JSON (default BENCH_PR10.json): the gate fails if
# ns/op or allocs/op regressed by more than TOL percent (default 25).
#
# Gated: the E1–E15 experiment benchmarks, the campus-world throughput
# benches (serial and the CampusWorldParallel workers variants), the sim
# kernel throughput benchmarks (KernelEventsPerSec at every depth,
# KernelSoak), the sharded-medium broadcast benches (MediumBroadcast at
# 64/1k/4k radios), and the per-layer marshal micro-benches (WEPSeal,
# TCPMarshal, IPv4Push, Dot11Data). RefHeapEventsPerSec and
# MediumBroadcastUnsharded are reported but not gated — they are the retired
# scheduler and the pre-shard delivery scan, kept as comparison floors. The
# chaos digest matrix benchmark is likewise reported only (pure wall-time,
# no E-table). The CampusWorldParallel variants gate on allocs/op only:
# their single-iteration timed window is a few hundred ms of wall time
# whose ns/op depends on host core count and contention (the serial
# CampusWorld bench gates campus wall-time; the speedup gate below covers
# the parallel kernel's actual promise).
#
# Parallel speedup gate: on hosts with at least 4 CPUs, the conservative-
# window kernel must deliver PAR_MIN× (default 2.0) the steady-state
# simsec/wallsec at 4 workers vs 1 on the 64-AP/1024-station campus
# (CampusWorldParallel). On smaller hosts the ratio is reported but not
# gated — prepare lanes cannot run in parallel without cores to run on.
#
#   scripts/bench_check.sh [reference.json]
#
# allocs/op is deterministic, so any trip there is a real regression; ns/op
# is machine-dependent, hence the generous threshold.
set -eu

cd "$(dirname "$0")/.."

REF=${1:-BENCH_PR10.json}
TOL=${TOL:-25}
PAR_MIN=${PAR_MIN:-2.0}
NCPU=$( (nproc || getconf _NPROCESSORS_ONLN || echo 1) 2>/dev/null | head -1)
if [ ! -f "$REF" ]; then
	echo "bench_check: missing reference $REF" >&2
	exit 2
fi

CUR=$(mktemp)
trap 'rm -f "$CUR"' EXIT

# /dev/null baseline: emit plain numbers, no baseline_* embedding.
sh scripts/bench.sh "$CUR" /dev/null

awk -v tol="$TOL" -v ref="$REF" -v parmin="$PAR_MIN" -v ncpu="$NCPU" '
# Both files are bench.sh JSON: one benchmark per "name" line with labeled
# ns_per_op / allocs_per_op values (integers or decimals).
function jnum(line, key,    re, m) {
	re = "\"" key "\": *-?[0-9]+(\\.[0-9]+)?"
	if (match(line, re) == 0) return ""
	m = substr(line, RSTART, RLENGTH)
	sub(/.*: */, "", m)
	return m
}
function parse(line) {
	split(line, q, "\"")
	pname = q[4]
	pns = jnum(line, "ns_per_op")
	pallocs = jnum(line, "allocs_per_op")
}
function gated(name) {
	return name ~ /^E[0-9]/ || name ~ /^KernelEventsPerSec/ || \
		name ~ /^MediumBroadcast\// || name == "CampusWorld" || \
		name ~ /^CampusWorldParallel\// || \
		name == "KernelSoak" || name == "WEPSeal" || \
		name == "TCPMarshal" || name == "IPv4Push" || name == "Dot11Data"
}
BEGIN {
	while ((getline line < ref) > 0) {
		if (line !~ /"name":/) continue
		parse(line)
		if (pns == "") continue
		rns[pname] = pns; rallocs[pname] = pallocs
	}
	close(ref)
	fail = 0
}
/"name":/ {
	parse($0)
	if (pns == "") next
	if (pname ~ /^CampusWorldParallel\/workers=/) {
		ssw[pname] = jnum($0, "simsec_per_wallsec")
	}
	if (!(pname in rns)) {
		printf "NEW     %-32s ns/op=%s allocs/op=%s (no reference)\n", pname, pns, pallocs
		next
	}
	nslim = rns[pname] * (1 + tol / 100)
	# Small absolute grace on top of the percentage: micro-benches with
	# near-zero allocs/op (e.g. the runtime-internal residue of ~2 in the
	# soak) must not flap on +/-1 jitter; real regressions are thousands.
	allocslim = rallocs[pname] * (1 + tol / 100) + 16
	# The parallel campus variants skip the ns/op gate (core-count and
	# contention dependent; see header) — allocs/op still gates them.
	nstrip = (pname ~ /^CampusWorldParallel\//) ? 0 : (pns + 0 > nslim)
	verdict = "ok"
	if (!gated(pname)) {
		verdict = "ungated"
	} else if (nstrip || pallocs + 0 > allocslim) {
		verdict = "REGRESSED"
		fail = 1
	}
	printf "%-9s %-32s ns/op %s -> %s, allocs/op %s -> %s\n", \
		verdict, pname, rns[pname], pns, rallocs[pname], pallocs
}
END {
	s1 = ssw["CampusWorldParallel/workers=1"]
	s4 = ssw["CampusWorldParallel/workers=4"]
	if (s1 == "" || s4 == "" || s1 + 0 == 0) {
		printf "bench_check: MISSING CampusWorldParallel simsec/wallsec metrics\n"
		fail = 1
	} else {
		ratio = (s4 + 0) / (s1 + 0)
		if (ncpu + 0 >= 4) {
			verdict = (ratio >= parmin + 0) ? "ok" : "REGRESSED"
			if (verdict == "REGRESSED") fail = 1
			printf "%-9s parallel speedup: %.2fx at 4 workers (gate >= %sx, %s CPUs)\n", \
				verdict, ratio, parmin, ncpu
		} else {
			printf "ungated   parallel speedup: %.2fx at 4 workers (%s CPUs < 4, gate skipped)\n", \
				ratio, ncpu
		}
	}
	if (fail) {
		printf "bench_check: regression beyond %s%% of %s (or parallel speedup below %sx)\n", tol, ref, parmin
		exit 1
	}
	printf "bench_check: all gated benchmarks within %s%% of %s\n", tol, ref
}
' "$CUR"
